"""The Section 2.2 strawmen: transparent DSM adaptations to disaggregation.

The paper motivates in-network management by analyzing two natural ways to
adapt classic DSM to a disaggregated rack, both of which pay *multiple
sequential remote round trips* per un-cached access:

- **compute-centric**: each compute blade is home for a partition of the
  address space and keeps its page table + coherence directory.  An
  un-cached access goes requester -> home compute blade (metadata +
  transition + invalidations) -> memory blade fetch -> requester.
- **memory-centric**: metadata lives at the home *memory* blade.  Same
  sequence, but the home hop lands on a memory blade, which therefore
  needs CPU cycles (contradicting CPU-less memory blades).

MIND collapses the home hop into the switch the request already traverses
(half a round trip), which is the core latency argument of Section 3.
These models exist to reproduce that argument quantitatively
(``benchmarks/test_motivation_dsm_latency.py``); they share the latency
constants with every other system for a fair comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from ..blades.cache import PageCache
from ..blades.memory import MemoryBlade
from ..core.vma import align_down
from ..sim.engine import Engine, Resource
from ..sim.network import CONTROL_MSG_BYTES, Network, NetworkConfig, PAGE_SIZE, Port
from ..sim.stats import StatsCollector

#: software metadata handling at a home node (page-table walk + directory
#: transition in kernel code).
HOME_HANDLER_US = 1.0


class DsmFlavor(enum.Enum):
    """Where the home metadata lives (Section 2.2's two adaptations)."""

    COMPUTE_CENTRIC = "compute-centric"
    MEMORY_CENTRIC = "memory-centric"


@dataclass
class DsmDirEntry:
    state: str = "I"  # I / S / M
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None


class DsmNode:
    """A compute blade in the strawman DSM."""

    def __init__(self, node_id: int, engine: Engine, network: Network, cache_pages: int):
        self.node_id = node_id
        self.port: Port = network.attach(f"dsm{node_id}")
        self.cache = PageCache(cache_pages)
        self.handler = Resource(engine, capacity=1)


class TransparentDsm:
    """A home-based DSM over disaggregated memory (either flavor)."""

    def __init__(
        self,
        flavor: DsmFlavor,
        num_compute: int = 2,
        num_memory: int = 2,
        cache_pages: int = 1024,
        network_config: Optional[NetworkConfig] = None,
    ):
        self.flavor = flavor
        self.engine = Engine()
        self.network = Network(self.engine, network_config or NetworkConfig())
        self.stats = StatsCollector()
        self.nodes = [
            DsmNode(i, self.engine, self.network, cache_pages)
            for i in range(num_compute)
        ]
        self.memory_blades = [
            MemoryBlade(i, self.network, 1 << 30, store_data=False)
            for i in range(num_memory)
        ]
        #: memory-centric homes need a handler resource at the memory blade
        #: (i.e. a CPU on the memory blade -- the design's own drawback).
        self._memory_handlers = [
            Resource(self.engine, capacity=1) for _ in self.memory_blades
        ]
        self.directory: Dict[int, DsmDirEntry] = {}
        self._next_va = 0

    @property
    def config(self) -> NetworkConfig:
        return self.network.config

    def mmap(self, length: int) -> int:
        base = self._next_va
        self._next_va += -(-length // PAGE_SIZE) * PAGE_SIZE
        return base

    # -- topology helpers ---------------------------------------------------

    def _memory_blade_for(self, page_va: int) -> MemoryBlade:
        return self.memory_blades[(page_va // PAGE_SIZE) % len(self.memory_blades)]

    def _home_port(self, page_va: int) -> Port:
        """Where the page's metadata lives."""
        if self.flavor is DsmFlavor.COMPUTE_CENTRIC:
            node = self.nodes[(page_va // PAGE_SIZE) % len(self.nodes)]
            return node.port
        return self._memory_blade_for(page_va).port

    def _home_handler(self, page_va: int) -> Resource:
        if self.flavor is DsmFlavor.COMPUTE_CENTRIC:
            return self.nodes[(page_va // PAGE_SIZE) % len(self.nodes)].handler
        return self._memory_handlers[
            (page_va // PAGE_SIZE) % len(self.memory_blades)
        ]

    def _rtt(self, src: Port, dst: Port, size: int) -> Generator:
        yield from self.engine.subtask(src.to_switch.transfer(size))
        yield self.config.switch_pipeline_us  # plain L2 forwarding
        yield from self.engine.subtask(dst.from_switch.transfer(size))

    # -- the access path ------------------------------------------------------

    def access(self, node: DsmNode, va: int, write: bool) -> Generator:
        """One access: hardware-MMU hit, or the multi-hop miss protocol."""
        page_va = align_down(va, PAGE_SIZE)
        if node.cache.lookup(va, write) is not None:
            yield self.config.dram_access_us
            return
        self.stats.incr("remote_accesses")
        yield self.config.fault_overhead_us

        # Hop 1 (sequential): requester -> home, metadata transition there.
        home_port = self._home_port(page_va)
        entry = self.directory.setdefault(page_va, DsmDirEntry())
        if home_port is not node.port:
            yield from self._rtt(node.port, home_port, CONTROL_MSG_BYTES)
        handler = self._home_handler(page_va)
        if not handler.try_acquire():
            yield handler.acquire()
        try:
            yield HOME_HANDLER_US
            yield from self._transition(entry, node, page_va, write, home_port)
        finally:
            handler.release()
        # Home replies with the grant before the data fetch can start.
        if home_port is not node.port:
            yield from self._rtt(home_port, node.port, CONTROL_MSG_BYTES)

        # Hop 2 (sequential): requester -> memory blade one-sided fetch.
        mem = self._memory_blade_for(page_va)
        yield self.config.rdma_verb_overhead_us
        yield from self._rtt(node.port, mem.port, CONTROL_MSG_BYTES)
        yield self.config.memory_service_us + self.config.dram_access_us
        yield from self._rtt(mem.port, node.port, PAGE_SIZE)
        yield self.config.rdma_verb_overhead_us
        for victim in node.cache.insert(page_va, None, writable=write):
            if victim.dirty:
                self.stats.incr("eviction_flushes")
        if write:
            node.cache.peek(page_va).dirty = True

    def _transition(self, entry, node, page_va, write, home_port) -> Generator:
        """MSI-ish metadata transition at the home, with invalidations."""
        if write:
            targets = set(entry.sharers)
            if entry.owner is not None:
                targets.add(entry.owner)
            targets.discard(node.node_id)
            if targets:
                yield from self._invalidate(home_port, sorted(targets), page_va)
            entry.state, entry.owner, entry.sharers = "M", node.node_id, {node.node_id}
        else:
            if entry.state == "M" and entry.owner not in (None, node.node_id):
                yield from self._invalidate(home_port, [entry.owner], page_va)
                entry.sharers = {entry.owner}
                entry.owner = None
            entry.state = "S"
            entry.sharers.add(node.node_id)

    def _invalidate(self, home_port: Port, targets: List[int], page_va: int) -> Generator:
        """Home sends unicast invalidations and awaits each ACK."""
        procs = [
            self.engine.process(self._invalidate_one(home_port, target, page_va))
            for target in targets
        ]
        yield self.engine.all_of(procs)

    def _invalidate_one(self, home_port: Port, target: int, page_va: int) -> Generator:
        sharer = self.nodes[target]
        self.stats.incr("invalidations_sent")
        yield from self._rtt(home_port, sharer.port, CONTROL_MSG_BYTES)
        yield self.config.invalidation_processing_us
        victim = sharer.cache.peek(page_va)
        if victim is not None:
            sharer.cache.drop(page_va)
            if victim.dirty:
                self.stats.incr("flushed_pages")
                mem = self._memory_blade_for(page_va)
                yield from self._rtt(sharer.port, mem.port, PAGE_SIZE)
                yield self.config.memory_service_us
        yield from self._rtt(sharer.port, home_port, CONTROL_MSG_BYTES)

    # -- measurement helper ------------------------------------------------------

    def measure_uncached_read(self, requester: int = 0, va: int = 0) -> float:
        """Latency of a single un-cached read (the Section 2.2 argument)."""
        node = self.nodes[requester]
        start = self.engine.now
        self.engine.run_process(self.access(node, va, write=False))
        return self.engine.now - start
