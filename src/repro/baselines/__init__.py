"""Baseline systems the paper compares against (Section 7) or analyzes as
strawmen (Section 2.2): GAM-style software DSM (transparent,
compute-elastic, slow local path), FastSwap-style swap (fast, but confined
to a single compute blade), and the compute-/memory-centric transparent
DSM adaptations whose sequential home hops motivate in-network
management."""

from .dsm import DsmFlavor, TransparentDsm
from .fastswap import FastSwapSystem
from .gam import GamSystem, SOFT_ACCESS_US, SOFT_LOCK_US

__all__ = [
    "DsmFlavor",
    "FastSwapSystem",
    "GamSystem",
    "SOFT_ACCESS_US",
    "SOFT_LOCK_US",
    "TransparentDsm",
]
