"""FastSwap baseline: swap-based disaggregated memory, single compute blade.

The paper's *non-transparent-elasticity* comparison point (Section 7):
FastSwap [12] exposes remote memory through the kernel swap path.  Page
faults fetch pages from memory blades over RDMA and evictions swap dirty
pages out asynchronously -- but there is **no sharing between compute
blades**: a process is confined to one blade, so FastSwap simply has no
data point beyond 10 threads in Fig. 5.

Without coherence there are no directory lookups, no recirculation and no
invalidations, so the fault path is marginally shorter than MIND's; both
scale near-linearly within a blade thanks to the hardware-MMU fault path.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, Optional, Tuple

from ..blades.cache import PageCache
from ..blades.memory import MemoryBlade
from ..core.vma import align_down
from ..sim.engine import Engine, Event
from ..sim.network import CONTROL_MSG_BYTES, Network, NetworkConfig, PAGE_SIZE, Port
from ..sim.stats import RunResult, StatsCollector
from ..workloads.trace import AccessOrStream, AccessStream, TraceWorkload


class FastSwapSystem:
    """A single compute blade swapping against memory blades."""

    name = "FastSwap"

    def __init__(
        self,
        num_memory_blades: int = 4,
        cache_capacity_pages: int = 32_768,
        network_config: Optional[NetworkConfig] = None,
        memory_blade_capacity: int = 1 << 34,
    ):
        self.engine = Engine()
        self.network = Network(self.engine, network_config or NetworkConfig())
        self.stats = StatsCollector()
        self.port: Port = self.network.attach("fastswap0")
        self.cache = PageCache(cache_capacity_pages)
        self.memory_blades = [
            MemoryBlade(i, self.network, memory_blade_capacity, store_data=False)
            for i in range(num_memory_blades)
        ]
        self._next_base = 0
        self._inflight: Dict[int, Event] = {}

    @property
    def config(self) -> NetworkConfig:
        return self.network.config

    def mmap(self, length: int) -> int:
        base = self._next_base
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        self._next_base += pages * PAGE_SIZE
        return base

    def _memory_blade_for(self, page_va: int) -> MemoryBlade:
        return self.memory_blades[(page_va // PAGE_SIZE) % len(self.memory_blades)]

    # -- swap-in / swap-out ------------------------------------------------------

    def _swap_in(self, page_va: int, write: bool) -> Generator:
        """Page fault: one-sided RDMA read of the page, no coherence."""
        while True:
            inflight = self._inflight.get(page_va)
            if inflight is None:
                break
            yield inflight
            if self.cache.lookup(page_va, write) is not None:
                return
        ev = self.engine.event()
        self._inflight[page_va] = ev
        try:
            self.stats.incr("remote_accesses")
            yield self.config.fault_overhead_us
            yield self.config.rdma_verb_overhead_us
            mem = self._memory_blade_for(page_va)
            yield from self.engine.subtask(self.port.to_switch.transfer(CONTROL_MSG_BYTES))
            yield self.config.switch_pipeline_us
            yield from self.engine.subtask(mem.port.from_switch.transfer(CONTROL_MSG_BYTES))
            yield self.config.memory_service_us + self.config.dram_access_us
            yield from self.engine.subtask(mem.port.to_switch.transfer(PAGE_SIZE))
            yield self.config.switch_pipeline_us
            yield from self.engine.subtask(self.port.from_switch.transfer(PAGE_SIZE))
            yield self.config.rdma_verb_overhead_us
            for victim in self.cache.insert(page_va, None, writable=True):
                if victim.dirty:
                    self.stats.incr("eviction_flushes")
                    self.engine.process(self._swap_out(victim.va))
            if write:
                self.cache.peek(page_va).dirty = True
        finally:
            del self._inflight[page_va]
            ev.succeed()

    def _swap_out(self, page_va: int) -> Generator:
        """Asynchronous dirty-page write-back to its memory blade."""
        mem = self._memory_blade_for(page_va)
        yield from self.engine.subtask(self.port.to_switch.transfer(PAGE_SIZE))
        yield self.config.switch_pipeline_us
        yield from self.engine.subtask(mem.port.from_switch.transfer(PAGE_SIZE))
        yield self.config.memory_service_us
        self.stats.incr("pages_written_back")

    # -- replay --------------------------------------------------------------------

    def run_thread(self, accesses: AccessOrStream) -> Generator:
        stream = AccessStream.coerce(accesses)
        vas = stream.vas
        write_flags = stream.writes
        dram_access_us = self.config.dram_access_us
        cache_lookup = self.cache.lookup
        local_debt = 0.0
        count = len(vas)
        for i in range(count):
            va = vas[i]
            is_write = write_flags[i]
            hit = cache_lookup(va, is_write)
            if hit is not None:
                local_debt += dram_access_us
                if local_debt >= 25.0:
                    yield local_debt
                    local_debt = 0.0
                continue
            if local_debt:
                yield local_debt
                local_debt = 0.0
            yield from self._swap_in(align_down(va, PAGE_SIZE), bool(is_write))
        if local_debt:
            yield local_debt
        return count

    def run_workload(self, workload: TraceWorkload) -> RunResult:
        """Replay all threads on the single compute blade."""
        bases = [self.mmap(spec.size_bytes) for spec in workload.region_specs()]
        traces = workload.all_traces(bases)
        procs = [self.engine.process(self.run_thread(t.stream())) for t in traces]
        barrier = self.engine.all_of(procs)
        self.engine.run_until_complete(barrier)
        total = sum(len(t) for t in traces)
        return RunResult(
            system=self.name,
            workload=workload.name,
            num_blades=1,
            num_threads=workload.num_threads,
            runtime_us=self.engine.now,
            total_accesses=total,
            stats=self.stats,
            kernel_stats=self.engine.kernel_stats(),
        )
