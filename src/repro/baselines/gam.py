"""GAM baseline: software DSM adapted to the disaggregated setting.

The paper's *transparent* comparison point (Section 7): GAM [35] is a
software distributed shared memory with a directory-based protocol and PSO
consistency.  Adapted to disaggregation as the paper describes, the cache
directory lives at the *compute blades* (home-partitioned by page), while
data pages live on memory blades.

The two properties the paper uses to explain GAM's scaling curves are
modelled directly:

- **Slow local accesses**: GAM is a user-level library, so *every* memory
  access -- hit or miss -- runs a software permission check that acquires a
  lock; local accesses are ~10x slower than MIND's MMU-backed hits, and the
  lock serializes enough of the path that scaling goes sub-linear past ~4
  threads on a blade (Fig. 5 left).
- **Extra home hop**: an un-cached access first contacts the page's home
  compute blade (directory op + invalidations), then fetches the page from
  its memory blade, so remote latency is at least MIND's plus a round trip.

Because local/remote latencies differ by only ~10x (vs ~100x for MIND),
extra invalidation traffic hurts GAM less -- which is exactly why GAM keeps
scaling on write-heavy workloads where MIND stalls (Fig. 5 center).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Optional, Set, Tuple

from ..blades.cache import PageCache
from ..blades.consistency import StoreBuffer
from ..blades.memory import MemoryBlade
from ..core.vma import align_down
from ..sim.engine import Engine, Event, Resource
from ..sim.network import CONTROL_MSG_BYTES, Network, NetworkConfig, PAGE_SIZE, Port
from ..sim.stats import RunResult, StatsCollector
from ..workloads.trace import AccessOrStream, AccessStream, TraceWorkload

#: Software path cost per access outside the lock (us).
SOFT_ACCESS_US = 0.65
#: Portion of the software path under the per-blade library lock (us).
SOFT_LOCK_US = 0.22


@dataclass
class GamDirEntry:
    """Directory entry at a home blade (page granularity, MSI-like)."""

    state: str = "I"  # I / S / M
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    lock: Resource = None  # type: ignore[assignment]


class GamBlade:
    """A compute blade running the GAM library."""

    def __init__(
        self,
        blade_id: int,
        engine: Engine,
        network: Network,
        cache_capacity_pages: int,
    ):
        self.blade_id = blade_id
        self.engine = engine
        self.config: NetworkConfig = network.config
        self.port: Port = network.attach(f"gam{blade_id}")
        self.cache = PageCache(cache_capacity_pages)
        self.lib_lock = Resource(engine, capacity=1)
        self._inval_resource = Resource(engine, capacity=1)
        self.directory: Dict[int, GamDirEntry] = {}
        self._inflight: Dict[int, Event] = {}

    def dir_entry(self, page_va: int) -> GamDirEntry:
        entry = self.directory.get(page_va)
        if entry is None:
            entry = GamDirEntry(lock=Resource(self.engine, capacity=1))
            self.directory[page_va] = entry
        return entry


class GamSystem:
    """The assembled GAM cluster and its workload runner."""

    name = "GAM"

    def __init__(
        self,
        num_blades: int,
        num_memory_blades: int = 4,
        cache_capacity_pages: int = 32_768,
        network_config: Optional[NetworkConfig] = None,
        memory_blade_capacity: int = 1 << 34,
    ):
        self.engine = Engine()
        self.network = Network(self.engine, network_config or NetworkConfig())
        self.stats = StatsCollector()
        self.blades = [
            GamBlade(i, self.engine, self.network, cache_capacity_pages)
            for i in range(num_blades)
        ]
        self.memory_blades = [
            MemoryBlade(i, self.network, memory_blade_capacity, store_data=False)
            for i in range(num_memory_blades)
        ]
        self._next_base = 0
        self.memory_blade_capacity = memory_blade_capacity

    # -- allocation (range-partitioned, like the adaptation needs) -----------

    def mmap(self, length: int) -> int:
        base = self._next_base
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        self._next_base += pages * PAGE_SIZE
        return base

    def _memory_blade_for(self, page_va: int) -> MemoryBlade:
        idx = (page_va // PAGE_SIZE) % len(self.memory_blades)
        return self.memory_blades[idx]

    def _home_blade_for(self, page_va: int) -> GamBlade:
        return self.blades[(page_va // PAGE_SIZE) % len(self.blades)]

    # -- network legs -----------------------------------------------------------

    def _rtt(self, src: Port, dst: Port, size_bytes: int) -> Generator:
        """src -> switch -> dst one-way carrying ``size_bytes``."""
        yield from self.engine.subtask(src.to_switch.transfer(size_bytes))
        yield self.config_pipeline_us()
        yield from self.engine.subtask(dst.from_switch.transfer(size_bytes))

    def config_pipeline_us(self) -> float:
        # Plain L2 forwarding through the same switch hardware.
        return self.network.config.switch_pipeline_us

    @property
    def config(self) -> NetworkConfig:
        return self.network.config

    # -- the GAM access path -------------------------------------------------------

    def access(self, blade: GamBlade, va: int, write: bool) -> Generator:
        """One GAM memory access: software check + (maybe) remote protocol."""
        # Software permission check under the library lock -- every access.
        if not blade.lib_lock.try_acquire():
            yield blade.lib_lock.acquire()
        try:
            yield SOFT_LOCK_US
        finally:
            blade.lib_lock.release()
        yield SOFT_ACCESS_US
        page = blade.cache.lookup(va, write)
        if page is not None:
            return
        yield from self._remote_access(blade, align_down(va, PAGE_SIZE), write)

    def _remote_access(self, blade: GamBlade, page_va: int, write: bool) -> Generator:
        """Miss path: home directory transaction, then data fetch.

        Concurrent misses on the same page at the same blade coalesce, as
        GAM's per-block request merging does.
        """
        while True:
            inflight = blade._inflight.get(page_va)
            if inflight is None:
                break
            yield inflight
            if blade.cache.lookup(page_va, write) is not None:
                return
        gate = self.engine.event()
        blade._inflight[page_va] = gate
        try:
            yield from self._remote_access_inner(blade, page_va, write)
        finally:
            del blade._inflight[page_va]
            gate.succeed()

    def _remote_access_inner(
        self, blade: GamBlade, page_va: int, write: bool
    ) -> Generator:
        self.stats.incr("remote_accesses")
        home = self._home_blade_for(page_va)
        if home is not blade:
            # Requester -> home (control message).
            yield from self._rtt(blade.port, home.port, CONTROL_MSG_BYTES)
        entry = home.dir_entry(page_va)
        if not entry.lock.try_acquire():
            yield entry.lock.acquire()
        try:
            yield from self._home_transition(home, entry, blade.blade_id, page_va, write)
        finally:
            entry.lock.release()
        # Fetch the page from its memory blade (one-sided RDMA).
        mem = self._memory_blade_for(page_va)
        yield self.config.rdma_verb_overhead_us
        yield from self._rtt(blade.port, mem.port, CONTROL_MSG_BYTES)
        yield self.config.memory_service_us + self.config.dram_access_us
        yield from self._rtt(mem.port, blade.port, PAGE_SIZE)
        yield self.config.rdma_verb_overhead_us
        for victim in blade.cache.insert(page_va, None, writable=write):
            if victim.dirty:
                self.stats.incr("eviction_flushes")
                self.engine.process(self._flush(blade, victim.va))
        if write:
            blade.cache.peek(page_va).dirty = True

    def _home_transition(
        self, home: GamBlade, entry: GamDirEntry, requester: int, page_va: int, write: bool
    ) -> Generator:
        """MSI-ish transition at the home blade, with invalidations."""
        yield SOFT_ACCESS_US  # directory handler software cost
        if write:
            targets = set(entry.sharers)
            if entry.owner is not None:
                targets.add(entry.owner)
            targets.discard(requester)
            if targets:
                yield from self._invalidate(home, sorted(targets), page_va)
            entry.state = "M"
            entry.owner = requester
            entry.sharers = {requester}
        else:
            if entry.state == "M" and entry.owner is not None and entry.owner != requester:
                old_owner = entry.owner
                yield from self._invalidate(home, [old_owner], page_va)
                entry.sharers = {old_owner}
                entry.owner = None
                entry.state = "S"
            elif entry.state != "M":
                entry.state = "S"
            entry.sharers.add(requester)

    def _invalidate(self, home: GamBlade, targets: List[int], page_va: int) -> Generator:
        """Home sends per-sharer invalidations (no multicast in software)."""
        procs = [
            self.engine.process(self._invalidate_one(home, target, page_va))
            for target in targets
        ]
        yield self.engine.all_of(procs)

    def _invalidate_one(self, home: GamBlade, target: int, page_va: int) -> Generator:
        sharer = self.blades[target]
        self.stats.incr("invalidations_sent")
        yield from self._rtt(home.port, sharer.port, CONTROL_MSG_BYTES)
        if not sharer._inval_resource.try_acquire():
            yield sharer._inval_resource.acquire()
        try:
            yield SOFT_ACCESS_US
            victim = sharer.cache.peek(page_va)
            if victim is not None:
                sharer.cache.drop(page_va)
                if victim.dirty:
                    self.stats.incr("flushed_pages")
                    yield from self._flush(sharer, page_va)
                else:
                    self.stats.incr("dropped_pages")
        finally:
            sharer._inval_resource.release()
        yield from self._rtt(sharer.port, home.port, CONTROL_MSG_BYTES)

    def _flush(self, blade: GamBlade, page_va: int) -> Generator:
        mem = self._memory_blade_for(page_va)
        yield from self._rtt(blade.port, mem.port, PAGE_SIZE)
        yield self.config.memory_service_us
        self.stats.incr("pages_written_back")

    # -- workload replay -----------------------------------------------------------

    def run_thread(
        self, blade: GamBlade, accesses: AccessOrStream, store_buffer_capacity: int = 32
    ) -> Generator:
        """Replay a trace under GAM's PSO consistency."""
        stream = AccessStream.coerce(accesses)
        vas = stream.vas
        write_flags = stream.writes
        buffer = StoreBuffer(store_buffer_capacity)
        count = len(vas)
        for i in range(count):
            va = vas[i]
            is_write = write_flags[i]
            page_va = align_down(va, PAGE_SIZE)
            if not is_write:
                pending = buffer.pending_for(page_va)
                if pending is not None and not pending.triggered:
                    yield pending
                yield from self.access(blade, va, False)
            else:
                while buffer.full:
                    oldest = buffer.oldest()
                    if oldest is None:
                        break
                    yield oldest
                completion = self.engine.event()

                def run_write(va=va, completion=completion, page_va=page_va) -> Generator:
                    try:
                        yield from self.access(blade, va, True)
                    finally:
                        buffer.complete(page_va)
                        completion.succeed()

                self.engine.process(run_write())
                buffer.add(page_va, completion)
                yield SOFT_ACCESS_US  # issue cost
        drain = buffer.drain_events()
        if drain:
            yield self.engine.all_of(drain)
        return count

    def run_workload(
        self, workload: TraceWorkload, num_blades_used: Optional[int] = None
    ) -> RunResult:
        """Replay every thread of ``workload``, round-robin across blades."""
        bases = [self.mmap(spec.size_bytes) for spec in workload.region_specs()]
        traces = workload.all_traces(bases)
        gens = []
        for trace in traces:
            blade = self.blades[trace.thread_id % len(self.blades)]
            gens.append(self.run_thread(blade, trace.stream()))
        procs = [self.engine.process(g) for g in gens]
        barrier = self.engine.all_of(procs)
        self.engine.run_until_complete(barrier)
        total = sum(len(t) for t in traces)
        return RunResult(
            system=self.name,
            workload=workload.name,
            num_blades=len(self.blades),
            num_threads=workload.num_threads,
            runtime_us=self.engine.now,
            total_accesses=total,
            stats=self.stats,
            kernel_stats=self.engine.kernel_stats(),
        )
