"""RDMA connection virtualization at the switch (Section 6.3).

Compute blades do not know which memory blade holds a page, so they cannot
maintain real queue pairs to them.  MIND's data plane *virtualizes* the
connections: each compute blade keeps one QP "to the memory pool"; when
translation (or coherence) resolves the actual destination, the switch
rewrites the packet's IP/MAC and RDMA parameters (destination QPN, rkey,
PSN) before forwarding -- transparently stitching the compute blade's
virtual connection to a real per-memory-blade connection.

The model tracks the virtual-to-physical connection table and the PSN
sequencing each real connection needs (a rewrite must keep per-destination
packet sequence numbers contiguous or the NIC would NAK), and counts
rewrites so benchmarks can report switch-side work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass
class VirtualConnection:
    """State for one (compute blade, memory blade) stitched connection."""

    compute_port: int
    memory_blade: int
    #: next packet sequence number on the real connection.
    next_psn: int = 0
    packets_rewritten: int = 0


class RdmaVirtualizer:
    """The switch-side connection table and header-rewrite engine."""

    def __init__(self) -> None:
        self._connections: Dict[Tuple[int, int], VirtualConnection] = {}
        self.rewrites = 0

    def connection(self, compute_port: int, memory_blade: int) -> VirtualConnection:
        key = (compute_port, memory_blade)
        conn = self._connections.get(key)
        if conn is None:
            conn = VirtualConnection(compute_port, memory_blade)
            self._connections[key] = conn
        return conn

    def rewrite(self, compute_port: int, memory_blade: int) -> int:
        """Rewrite one packet's headers for its resolved destination.

        Returns the PSN assigned on the real connection.
        """
        conn = self.connection(compute_port, memory_blade)
        psn = conn.next_psn
        conn.next_psn += 1
        conn.packets_rewritten += 1
        self.rewrites += 1
        return psn

    @property
    def num_connections(self) -> int:
        return len(self._connections)

    def connections_for_blade(self, compute_port: int) -> int:
        return sum(1 for (cp, _mb) in self._connections if cp == compute_port)
