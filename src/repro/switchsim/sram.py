"""Switch SRAM register arrays.

MIND reserves a fixed amount of data-plane SRAM for cache-directory entries,
partitioned into fixed-size *slots* -- one per region entry -- managed by a
control-plane free list plus a ``used_map`` from region base address to slot
(Section 6.3).  This module models exactly that: a bounded slot array whose
occupancy is what Fig. 8 (left) plots against the 30 k budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


class SramFullError(RuntimeError):
    """Raised when allocating a slot from an exhausted register array."""


@dataclass
class SramSlot:
    """One fixed-size register slot holding a directory entry."""

    index: int
    data: Any = None


class RegisterArray:
    """A bounded array of SRAM slots with a free list and a used map."""

    def __init__(self, capacity: int, name: str = "sram"):
        if capacity < 1:
            raise ValueError("register array capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        # Slots materialise lazily: switch tables are sized for the worst
        # case (tens of thousands of entries) but most runs touch a small
        # prefix, and eagerly building every SramSlot showed up in cluster
        # construction profiles.  Allocation order is identical to an
        # eagerly-built free list: released indices are reused LIFO first,
        # then fresh indices in ascending order.
        self._slots: List[SramSlot] = []
        self._released: List[int] = []
        self._used_map: Dict[int, int] = {}
        self.peak_used = 0

    def __len__(self) -> int:
        return len(self._used_map)

    @property
    def free(self) -> int:
        return self.capacity - len(self._used_map)

    @property
    def used(self) -> int:
        return len(self._used_map)

    def utilization(self) -> float:
        return self.used / self.capacity

    def allocate(self, key: int, data: Any = None) -> SramSlot:
        """Take a slot from the free list and bind it to ``key``."""
        if key in self._used_map:
            raise ValueError(f"{self.name}: key {key:#x} already mapped")
        if len(self._used_map) >= self.capacity:
            raise SramFullError(f"{self.name}: all {self.capacity} slots in use")
        if self._released:
            idx = self._released.pop()
        else:
            idx = len(self._slots)
            self._slots.append(SramSlot(idx))
        slot = self._slots[idx]
        slot.data = data
        self._used_map[key] = idx
        self.peak_used = max(self.peak_used, self.used)
        return slot

    def lookup(self, key: int) -> Optional[SramSlot]:
        idx = self._used_map.get(key)
        return self._slots[idx] if idx is not None else None

    def release(self, key: int) -> None:
        """Return a slot to the free list."""
        idx = self._used_map.pop(key, None)
        if idx is None:
            raise KeyError(f"{self.name}: key {key:#x} not mapped")
        self._slots[idx].data = None
        self._released.append(idx)

    def rekey(self, old_key: int, new_key: int) -> None:
        """Rebind a slot to a new key (used when regions merge/split)."""
        if new_key in self._used_map:
            raise ValueError(f"{self.name}: key {new_key:#x} already mapped")
        idx = self._used_map.pop(old_key, None)
        if idx is None:
            raise KeyError(f"{self.name}: key {old_key:#x} not mapped")
        self._used_map[new_key] = idx

    def keys(self) -> Iterator[int]:
        return iter(self._used_map.keys())

    def items(self) -> Iterator:
        return ((k, self._slots[i].data) for k, i in self._used_map.items())


class MetadataSram:
    """A byte-granular SRAM bank for control-plane allocator metadata.

    Unlike the slot-partitioned :class:`RegisterArray` (directory entries
    are fixed-size), allocator bookkeeping -- free lists, boundary tags,
    buddy bitmaps -- is variable-size, so this bank tracks raw byte
    occupancy against a fixed budget.  Exceeding the budget does not fail
    the allocation (the CPU spills to its DRAM); it is *counted*, because
    every spill is a policy whose metadata no longer fits beside the
    directory on the switch -- exactly the trade-off the allocator
    ablation is measuring.
    """

    def __init__(self, capacity: int, name: str = "metadata-sram"):
        if capacity < 1:
            raise ValueError("metadata sram capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self.used = 0
        self.peak_used = 0
        self.overflows = 0

    def set_used(self, nbytes: int) -> None:
        """Snap occupancy to ``nbytes`` (the owner recomputes, we record)."""
        if nbytes > self.capacity and self.used <= self.capacity:
            self.overflows += 1
        self.used = nbytes
        if nbytes > self.peak_used:
            self.peak_used = nbytes

    def utilization(self) -> float:
        return self.used / self.capacity
