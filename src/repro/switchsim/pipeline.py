"""Staged match-action pipeline model.

A Tofino processes each packet through a fixed sequence of match-action
units (MAUs), each with limited per-packet compute; complex logic must be
spread across stages or *recirculated* through the pipeline for another
pass.  MIND needs recirculation for directory updates: MAU-1 holds the
directory entries and performs the lookup, MAU-2 holds the materialized
state-transition table (STT), and the packet is recirculated so MAU-1 can
apply the update the STT selected (Section 6.3, Fig. 4).

The per-stage compute limit is enforced *per packet pass* via
:class:`PacketPass`: a packet may perform at most ``max_ops_per_pass``
table operations in a given MAU before it must recirculate.  Many packets
are in flight concurrently; each carries its own pass context.

The pipeline runs at line rate (6.4 Tbps), so per-packet queueing inside
the switch is negligible for our traffic; the model charges the fixed
traversal latency and counts passes/recirculations so benchmarks can
report switch-side costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List

from ..sim.engine import Engine
from ..sim.network import NetworkConfig


class MauComputeError(RuntimeError):
    """Raised when a packet asks one MAU for more work than one pass allows."""


@dataclass
class Mau:
    """One match-action unit: a named stage with bounded per-pass compute."""

    name: str
    max_ops_per_pass: int = 1
    total_ops: int = field(default=0, repr=False)


class PacketPass:
    """Per-packet pipeline context enforcing per-MAU op limits per pass."""

    def __init__(self, pipeline: "SwitchPipeline"):
        self._pipeline = pipeline
        self._ops: Dict[str, int] = {}
        self.passes = 0

    def execute(self, mau: Mau, op: Callable[[], Any]) -> Any:
        """Run one table operation in ``mau`` during the current pass."""
        if self.passes == 0:
            raise MauComputeError("packet has not traversed the pipeline yet")
        used = self._ops.get(mau.name, 0)
        if used >= mau.max_ops_per_pass:
            raise MauComputeError(
                f"MAU {mau.name}: exceeded {mau.max_ops_per_pass} op(s) per pass; "
                "recirculate instead"
            )
        self._ops[mau.name] = used + 1
        mau.total_ops += 1
        tracer = self._pipeline.engine.tracer
        if tracer.enabled:
            tracer.instant(
                self._pipeline.engine.now,
                "switch",
                f"mau:{mau.name}",
                track=tracer.track("switch"),
            )
        return op()

    def _pass(self, name: str, dur: float) -> Generator:
        self.passes += 1
        self._ops.clear()
        self._pipeline.passes += 1
        tracer = self._pipeline.engine.tracer
        if tracer.enabled:
            tracer.complete(
                self._pipeline.engine.now,
                dur,
                "switch",
                name,
                track=tracer.track("switch"),
            )
        yield dur

    def traverse(self) -> Generator:
        """One full pipeline pass for this packet."""
        return self._pass("pipeline_pass", self._pipeline.config.switch_pipeline_us)

    def traverse_us(self) -> float:
        """Counter side of :meth:`traverse` without the generator.

        Untraced fast path: a caller that has already established the
        subtask fuse guard (nothing else due at this instant, tracer off)
        may bump the pass bookkeeping here and yield the returned latency
        inline -- exactly what driving the fused :meth:`traverse` generator
        would have done, minus the generator frame.
        """
        self.passes += 1
        self._ops.clear()
        self._pipeline.passes += 1
        return self._pipeline.config.switch_pipeline_us

    def recirculate_us(self) -> float:
        """Counter side of :meth:`recirculate`; see :meth:`traverse_us`."""
        self._pipeline.recirculations += 1
        self.passes += 1
        self._ops.clear()
        self._pipeline.passes += 1
        return (
            self._pipeline.config.recirculation_us
            + self._pipeline.config.switch_pipeline_us
        )

    def recirculate(self) -> Generator:
        """Send this packet around for another pass (extra latency)."""
        self._pipeline.recirculations += 1
        return self._pass(
            "recirculate",
            self._pipeline.config.recirculation_us
            + self._pipeline.config.switch_pipeline_us,
        )


class SwitchPipeline:
    """The ingress/egress pipeline: stage registry plus global counters."""

    def __init__(self, engine: Engine, config: NetworkConfig):
        self.engine = engine
        self.config = config
        self.stages: List[Mau] = []
        self.passes = 0
        self.recirculations = 0
        #: spine-bound packets this switch forwarded without MAU work
        #: (multi-rack transit traffic through this rack's switch).
        self.forwards = 0

    def forward(self) -> Generator:
        """One forwarding pass for a spine-bound packet.

        The packet enters this switch's pipeline only to be routed toward
        the spine tier -- no MAU table operations -- so it pays the
        traversal latency but is counted separately from coherence passes,
        letting per-rack accounting report pure transit load.
        """
        self.forwards += 1
        yield self.config.switch_pipeline_us
        return True

    def add_stage(self, name: str, max_ops_per_pass: int = 1) -> Mau:
        if any(m.name == name for m in self.stages):
            raise ValueError(f"duplicate MAU stage name: {name}")
        mau = Mau(name, max_ops_per_pass)
        self.stages.append(mau)
        return mau

    def stage(self, name: str) -> Mau:
        for mau in self.stages:
            if mau.name == name:
                return mau
        raise KeyError(f"no MAU stage named {name}")

    def packet(self) -> PacketPass:
        """A fresh per-packet pass context."""
        return PacketPass(self)
