"""Programmable-switch substrate: TCAM, SRAM, pipeline, multicast, CPU.

Models the resource and mechanism constraints of an RMT switch ASIC
(Tofino-class) that MIND's design navigates: bounded TCAM/SRAM tables,
one-table-op-per-MAU-pass compute limits with recirculation, native
multicast with egress pruning, and a PCIe-attached control CPU.
"""

from .control_cpu import ControlCpu
from .multicast import MulticastEngine, MulticastGroup
from .packets import (
    AccessType,
    InvalidationAck,
    InvalidationRequest,
    MemRequest,
    PacketVerdict,
    ResetRequest,
)
from .pipeline import Mau, MauComputeError, PacketPass, SwitchPipeline
from .rdma_virt import RdmaVirtualizer, VirtualConnection
from .sram import RegisterArray, SramFullError, SramSlot
from .tcam import (
    Tcam,
    TcamEntry,
    TcamFullError,
    VA_WIDTH,
    block_to_prefix,
    prefix_mask,
    split_range_to_pow2,
)

__all__ = [
    "AccessType",
    "ControlCpu",
    "InvalidationAck",
    "InvalidationRequest",
    "Mau",
    "MauComputeError",
    "MemRequest",
    "MulticastEngine",
    "MulticastGroup",
    "PacketPass",
    "PacketVerdict",
    "RdmaVirtualizer",
    "RegisterArray",
    "ResetRequest",
    "SramFullError",
    "SramSlot",
    "SwitchPipeline",
    "Tcam",
    "TcamEntry",
    "TcamFullError",
    "VA_WIDTH",
    "VirtualConnection",
    "block_to_prefix",
    "prefix_mask",
    "split_range_to_pow2",
]
