"""Packet formats parsed by the switch data plane.

The real MIND parser extracts custom header fields from RoCE packets; we
model the post-parse representation directly.  Field names follow the
paper: requests carry a virtual address, the protection domain id (PDID)
and the requested permission class, and never a destination endpoint --
destination resolution is the switch's job (Section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet


class AccessType(enum.Enum):
    """Requested permission class for a memory access (Linux semantics)."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class PacketVerdict(enum.Enum):
    """Outcome of the protection stage for a request."""

    ALLOW = "allow"
    REJECT_NO_ENTRY = "reject-no-entry"
    REJECT_PERMISSION = "reject-permission"


@dataclass(frozen=True)
class MemRequest:
    """A page-fault-triggered RDMA request intercepted by the switch.

    ``va`` is the faulting virtual address; ``pdid`` identifies the
    protection domain (the PID for unmodified applications).
    """

    va: int
    pdid: int
    access: AccessType
    src_port: int
    size: int = 4096


@dataclass(frozen=True)
class InvalidationRequest:
    """Region invalidation multicast to sharers (Section 4.3.2).

    The sharer list is embedded in the packet; egress pruning drops copies
    headed to ports not in the list.
    """

    region_base: int
    region_size: int
    sharers: FrozenSet[int]
    requester_port: int
    #: the page whose fault triggered this invalidation; any other page
    #: invalidated alongside it is a *false invalidation* (Section 4.3.1).
    target_va: int = -1
    #: if set, the new state leaves this sharer with read access (M->S);
    #: otherwise sharers must drop the region entirely.
    downgrade_to_shared: bool = False
    #: MOESI: downgrade but keep dirty pages dirty and unflushed -- the
    #: blade becomes the region's Owner and keeps supplying the data.
    keep_dirty: bool = False


@dataclass(frozen=True)
class InvalidationAck:
    """ACK from a compute blade confirming a region was invalidated.

    Carries the accounting the switch control plane needs for Bounded
    Splitting (false invalidation counts) and that Fig. 6/7 report.
    """

    region_base: int
    src_port: int
    #: dirty pages written back to their memory blade.
    flushed_pages: int = 0
    #: clean pages dropped from the cache.
    dropped_pages: int = 0
    #: pages invalidated that were not the faulting page (false invals).
    false_invalidations: int = 0
    #: queueing delay before the blade processed the request (us).
    queue_delay_us: float = 0.0
    #: synchronous TLB shootdown time incurred (us).
    tlb_shootdown_us: float = 0.0


@dataclass(frozen=True)
class ResetRequest:
    """Last-resort reset for a wedged address after repeated ACK timeouts
    (Section 4.4): forces all blades to flush and drops the directory entry.
    """

    va: int
    src_port: int
