"""Ternary content-addressable memory (TCAM) model.

The Tofino's TCAM gives MIND two primitives it leans on heavily:

- **Longest-prefix match** over a packet field, used for address translation
  with *outlier* entries: the most specific entry wins, so a migrated-page
  entry shadows the blade-level range entry that contains it (Section 4.1).
- **Parallel range matching**, used for the ``<PDID, vma> -> PC`` protection
  table (Section 4.2).  A TCAM entry can only match a power-of-two aligned
  range, so arbitrary vmas are decomposed into at most ``ceil(log2 s)``
  entries by :func:`split_range_to_pow2`.

Capacity is enforced: the paper reports ~45 k match-action rules as the
switch limit; callers configure their table budgets and inserting past a
budget raises :class:`TcamFullError`, which upper layers must handle (that
pressure is what drives the Fig. 8/9 results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Virtual addresses are 48-bit, as on x86-64.
VA_WIDTH = 48


class TcamFullError(RuntimeError):
    """Raised when inserting into a TCAM table that is at capacity."""


@dataclass(frozen=True)
class TcamEntry:
    """One ternary entry: matches ``key`` iff ``(key & mask) == value``."""

    value: int
    mask: int
    priority: int
    data: Any

    def matches(self, key: int) -> bool:
        return (key & self.mask) == self.value


def prefix_mask(prefix_len: int, width: int = VA_WIDTH) -> int:
    """Mask selecting the top ``prefix_len`` bits of a ``width``-bit field."""
    if not 0 <= prefix_len <= width:
        raise ValueError(f"prefix length {prefix_len} out of range for width {width}")
    if prefix_len == 0:
        return 0
    return ((1 << prefix_len) - 1) << (width - prefix_len)


def split_range_to_pow2(base: int, length: int) -> List[Tuple[int, int]]:
    """Decompose ``[base, base+length)`` into power-of-two aligned blocks.

    This is the classical route-aggregation decomposition: repeatedly take
    the largest power-of-two block that is aligned at the current base and
    fits in the remaining length.  For a range of size ``s`` the result has
    at most ``2 * ceil(log2 s)`` blocks (and exactly one when the range is a
    naturally aligned power of two, which MIND's allocator guarantees for
    its own allocations).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if base < 0:
        raise ValueError("base must be non-negative")
    blocks: List[Tuple[int, int]] = []
    cur, remaining = base, length
    while remaining > 0:
        align = cur & -cur if cur > 0 else 1 << remaining.bit_length()
        size = min(align, 1 << (remaining.bit_length() - 1))
        blocks.append((cur, size))
        cur += size
        remaining -= size
    return blocks


def block_to_prefix(base: int, size: int, width: int = VA_WIDTH) -> Tuple[int, int]:
    """Convert an aligned power-of-two block into a (value, mask) prefix."""
    if size <= 0 or size & (size - 1):
        raise ValueError(f"size {size} is not a power of two")
    if base % size:
        raise ValueError(f"base {base:#x} is not aligned to size {size:#x}")
    prefix_len = width - (size.bit_length() - 1)
    mask = prefix_mask(prefix_len, width)
    return base & mask, mask


class Tcam:
    """A priority-ordered ternary match table with bounded capacity.

    Lookup returns the matching entry with the highest priority (for prefix
    entries, priority is the prefix length, giving LPM semantics).  Ties are
    broken by most-recent insertion, matching how rule updates shadow stale
    rules in real switches.
    """

    def __init__(self, capacity: int, name: str = "tcam"):
        if capacity < 1:
            raise ValueError("TCAM capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._entries: List[TcamEntry] = []
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TcamEntry]:
        return iter(self._entries)

    @property
    def free(self) -> int:
        return self.capacity - len(self._entries)

    def insert(self, value: int, mask: int, priority: int, data: Any) -> TcamEntry:
        if len(self._entries) >= self.capacity:
            raise TcamFullError(
                f"{self.name}: capacity {self.capacity} exhausted"
            )
        if value & ~mask:
            raise ValueError("entry value has bits outside its mask")
        entry = TcamEntry(value, mask, priority, data)
        self._entries.append(entry)
        return entry

    def insert_prefix(
        self, base: int, size: int, data: Any, width: int = VA_WIDTH
    ) -> TcamEntry:
        """Insert an aligned power-of-two range as a single prefix entry."""
        value, mask = block_to_prefix(base, size, width)
        prefix_len = width - (size.bit_length() - 1)
        return self.insert(value, mask, prefix_len, data)

    def insert_range(
        self, base: int, length: int, data: Any, width: int = VA_WIDTH
    ) -> List[TcamEntry]:
        """Insert an arbitrary range, decomposed into power-of-two prefixes.

        All-or-nothing: if the decomposition does not fit, nothing is
        inserted and :class:`TcamFullError` is raised.
        """
        blocks = split_range_to_pow2(base, length)
        if len(blocks) > self.free:
            raise TcamFullError(
                f"{self.name}: range needs {len(blocks)} entries, {self.free} free"
            )
        return [self.insert_prefix(b, s, data, width) for b, s in blocks]

    def remove(self, entry: TcamEntry) -> None:
        self._entries.remove(entry)

    def remove_where(self, predicate) -> int:
        """Remove all entries matching a predicate; returns count removed."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        return before - len(self._entries)

    def lookup(self, key: int) -> Optional[TcamEntry]:
        """Highest-priority match for ``key`` (LPM for prefix entries)."""
        self.lookups += 1
        best: Optional[TcamEntry] = None
        for entry in self._entries:
            if entry.matches(key) and (best is None or entry.priority >= best.priority):
                best = entry
        return best

    def coalesce(self, width: int = VA_WIDTH) -> int:
        """Merge buddy prefix entries that carry equal data (Section 4.2).

        Two entries are buddies when they are the two halves of a
        double-sized aligned block.  Runs to fixpoint; returns the number of
        entries eliminated.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            by_key: Dict[Tuple[int, int], TcamEntry] = {
                (e.value, e.mask): e for e in self._entries
            }
            for entry in list(self._entries):
                if entry.mask == 0:
                    continue
                size_bit = (~entry.mask) & ((1 << width) - 1)
                size = size_bit + 1
                buddy_value = entry.value ^ size
                buddy = by_key.get((buddy_value, entry.mask))
                if buddy is None or buddy is entry or buddy.data != entry.data:
                    continue
                if entry not in self._entries or buddy not in self._entries:
                    continue
                merged_base = min(entry.value, buddy_value)
                self._entries.remove(entry)
                self._entries.remove(buddy)
                self.insert_prefix(merged_base, size * 2, entry.data, width)
                removed += 1
                changed = True
                break
        return removed
