"""Switch control-plane CPU model.

The Wedge switch carries a general-purpose CPU (Intel Broadwell, 8 GB RAM)
connected to the ASIC over PCIe.  It hosts MIND's controller: the syscall
TCP server, process/memory metadata, and the bounded-splitting logic that
periodically rewrites data-plane rules.  Rule installs/removals cross PCIe
and are much slower than data-plane packet handling, which is why MIND
keeps them off the data path (only metadata operations touch the CPU).

We model the CPU as a single-server queue with a fixed per-rule-update cost
so that control-plane overhead can be reported (the epoch-sizing argument
in Fig. 9 right rests on it).
"""

from __future__ import annotations

from typing import Generator

from ..sim.engine import Engine, Resource


class ControlCpu:
    """Single-threaded control processor with PCIe rule-update costs."""

    #: Cost of installing or removing one data-plane rule over PCIe (us).
    RULE_UPDATE_US = 20.0
    #: Cost of handling one intercepted syscall (parse + metadata + reply).
    SYSCALL_US = 10.0

    def __init__(self, engine: Engine):
        self.engine = engine
        self._cpu = Resource(engine, capacity=1, name="switch.control_cpu")
        self.rule_updates = 0
        self.syscalls_handled = 0
        self.busy_us = 0.0
        self.stalls = 0
        self.stall_us = 0.0
        #: modeled allocator work (the allocator-policy axis): op count and
        #: accumulated CPU microseconds.  Accounting-only -- trace-replay
        #: mmaps all happen at t=0 outside simulated time, so the charge
        #: must not occupy the single-server queue (scenarios that *do*
        #: serialize syscalls through the CPU use :meth:`occupy`).
        self.alloc_ops = 0
        self.alloc_us = 0.0

    def charge_alloc(self, cost_us: float) -> None:
        """Book one allocator operation's modeled CPU time."""
        self.alloc_ops += 1
        self.alloc_us += cost_us

    def occupy(self, cost_us: float) -> Generator:
        """Process generator: hold the CPU for an explicit duration.

        The public entry for scenarios that serialize modeled work (e.g.
        syscall + allocation cost in the churn benchmark) through the
        single-server queue so queueing delay emerges.
        """
        return self._occupy(cost_us)

    def _occupy(self, cost_us: float) -> Generator:
        if not self._cpu.try_acquire():
            yield self._cpu.acquire()
        try:
            yield cost_us
            self.busy_us += cost_us
        finally:
            self._cpu.release()

    def apply_rule_update(self) -> Generator:
        """Process generator: one PCIe rule install/remove."""
        self.rule_updates += 1
        return self._occupy(self.RULE_UPDATE_US)

    def handle_syscall(self) -> Generator:
        """Process generator: one intercepted syscall round at the CPU."""
        self.syscalls_handled += 1
        return self._occupy(self.SYSCALL_US)

    def stall(self, duration_us: float) -> Generator:
        """Process generator: an injected control-CPU stall.

        Occupies the single-server CPU for ``duration_us``, so queued rule
        updates and syscalls wait it out -- the observable cost of a wedged
        controller (GC pause, PCIe hiccup, livelocked daemon).
        """
        self.stalls += 1
        self.stall_us += duration_us
        return self._occupy(duration_us)

    def utilization(self) -> float:
        if self.engine.now <= 0:
            return 0.0
        return self.busy_us / self.engine.now
