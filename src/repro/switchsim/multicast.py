"""Switch multicast engine with egress sharer-list pruning.

MIND sends invalidations by replicating one packet to a multicast group
containing *all* compute blades, embedding the sharer list in the packet,
and dropping copies in the egress pipeline whose output port does not lead
to a sharer (Section 4.3.2).  This costs a single ingress pipeline pass
regardless of sharer count -- the property that makes in-network coherence
latency-efficient -- at the price of replication bandwidth inside the
traffic manager, which we account for via the ``replicated``/``pruned``
counters.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set


class MulticastGroup:
    """A set of egress ports a packet is replicated to."""

    def __init__(self, group_id: int, ports: Iterable[int]):
        self.group_id = group_id
        self.ports: Set[int] = set(ports)

    def add_port(self, port: int) -> None:
        self.ports.add(port)

    def remove_port(self, port: int) -> None:
        self.ports.discard(port)


class MulticastEngine:
    """Replicates packets to group members and applies egress pruning."""

    def __init__(self) -> None:
        self._groups: Dict[int, MulticastGroup] = {}
        self.replicated = 0
        self.pruned = 0
        self.delivered = 0

    def create_group(self, group_id: int, ports: Iterable[int]) -> MulticastGroup:
        if group_id in self._groups:
            raise ValueError(f"multicast group {group_id} already exists")
        group = MulticastGroup(group_id, ports)
        self._groups[group_id] = group
        return group

    def group(self, group_id: int) -> MulticastGroup:
        return self._groups[group_id]

    def replicate(
        self,
        group_id: int,
        sharer_ports: FrozenSet[int],
        exclude_port: int = -1,
    ) -> List[int]:
        """Replicate to the group, pruning non-sharers at egress.

        Returns the ports that actually receive a copy: group members that
        appear in the packet's embedded sharer list, minus the requester
        (``exclude_port``), which must not invalidate itself.
        """
        group = self._groups[group_id]
        out: List[int] = []
        for port in sorted(group.ports):
            self.replicated += 1
            if port in sharer_ports and port != exclude_port:
                out.append(port)
                self.delivered += 1
            else:
                self.pruned += 1
        return out
