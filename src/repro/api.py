"""Public API: transparent virtual memory over a disaggregated rack.

This is the interface a downstream user programs against.  It mirrors what
MIND gives unmodified applications -- processes, threads placed across
compute blades, ``mmap``/``munmap``/``mprotect``, and plain loads/stores --
while hiding the event engine:

    >>> from repro.api import MindSystem
    >>> system = MindSystem(num_compute_blades=2, num_memory_blades=2)
    >>> proc = system.spawn_process("app")
    >>> buf = proc.mmap(1 << 20)
    >>> t0, t1 = proc.spawn_thread(), proc.spawn_thread()  # two blades
    >>> t0.write(buf, b"hello")
    >>> t1.read(buf, 5)      # coherent across blades
    b'hello'

Two usage styles:

- **Blocking** (``read``/``write``): each call advances the simulation
  until that one operation completes.  Simple, for single-logical-thread
  programs and examples.
- **Process-style** (``load_gen``/``store_gen``/``run_concurrently``): for
  simulating genuinely concurrent threads, write generator functions and
  let the engine interleave them.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from .blades.compute import ComputeBlade, SegmentationFault
from .cluster import ClusterConfig, MindCluster
from .core.controller import TaskStruct, ThreadInfo
from .core.mmu import MindConfig
from .core.vma import PermissionClass
from .sim.network import NetworkConfig, PAGE_SIZE

__all__ = [
    "MindSystem",
    "MindProcess",
    "MindThread",
    "PermissionClass",
    "SegmentationFault",
    "PAGE_SIZE",
]


class MindThread:
    """A thread of a MIND process, pinned to one compute blade."""

    def __init__(self, system: "MindSystem", process: "MindProcess", info: ThreadInfo):
        self._system = system
        self.process = process
        self.info = info
        self.blade: ComputeBlade = system.cluster.compute_blade(info.blade_id)

    @property
    def tid(self) -> int:
        return self.info.tid

    @property
    def blade_id(self) -> int:
        return self.info.blade_id

    # -- blocking style ------------------------------------------------------

    def read(self, va: int, size: int) -> bytes:
        """Load ``size`` bytes at ``va``, advancing the simulation."""
        return self._system.cluster.run_process(
            self.blade.load_bytes(self.process.pid, va, size)
        )

    def write(self, va: int, data: bytes) -> None:
        """Store ``data`` at ``va``, advancing the simulation."""
        self._system.cluster.run_process(
            self.blade.store_bytes(self.process.pid, va, data)
        )

    def touch(self, va: int, write: bool = False) -> None:
        """Fault a single page in (useful for warming/benchmarking)."""
        self._system.cluster.run_process(
            self.blade.ensure_page(self.process.pid, va, write)
        )

    # -- process style --------------------------------------------------------

    def load_gen(self, va: int, size: int) -> Generator:
        """Generator form of :meth:`read` for concurrent simulation."""
        return self.blade.load_bytes(self.process.pid, va, size)

    def store_gen(self, va: int, data: bytes) -> Generator:
        """Generator form of :meth:`write` for concurrent simulation."""
        return self.blade.store_bytes(self.process.pid, va, data)

    def run_trace_gen(self, accesses, **kwargs) -> Generator:
        """Generator replaying ``(va, is_write)`` accesses on this thread."""
        return self.blade.run_thread(self.process.pid, accesses, **kwargs)


class MindProcess:
    """A process with a single global-address-space view across blades."""

    def __init__(self, system: "MindSystem", task: TaskStruct):
        self._system = system
        self._task = task
        self.threads: List[MindThread] = []

    @property
    def pid(self) -> int:
        return self._task.pid

    @property
    def name(self) -> str:
        return self._task.name

    # -- memory syscalls ---------------------------------------------------------

    def mmap(
        self, length: int, perm: PermissionClass = PermissionClass.READ_WRITE
    ) -> int:
        """Allocate a vma; returns its base virtual address."""
        return self._system.controller.sys_mmap(self.pid, length, perm)

    def munmap(self, va_base: int) -> None:
        self._system.controller.sys_munmap(self.pid, va_base)

    def brk(self, increment: int) -> int:
        return self._system.controller.sys_brk(self.pid, increment)

    def mprotect(self, va_base: int, perm: PermissionClass) -> None:
        self._system.controller.sys_mprotect(self.pid, va_base, perm)

    def grant_domain(self, va_base: int, pdid: int, perm: PermissionClass) -> None:
        """Capability-style: let another protection domain access a vma."""
        self._system.controller.grant_domain(self.pid, va_base, pdid, perm)

    def revoke_domain(self, va_base: int, pdid: int) -> None:
        self._system.controller.revoke_domain(self.pid, va_base, pdid)

    # -- threads ----------------------------------------------------------------

    def spawn_thread(self) -> MindThread:
        """Place a new thread (round-robin across compute blades)."""
        info = self._system.controller.place_thread(self.pid)
        thread = MindThread(self._system, self, info)
        self.threads.append(thread)
        return thread

    def exit(self) -> None:
        self._system.controller.sys_exit(self.pid)
        self.threads.clear()


class MindSystem:
    """A MIND rack: the top-level object users construct."""

    def __init__(
        self,
        num_compute_blades: int = 2,
        num_memory_blades: int = 1,
        cache_capacity_pages: Optional[int] = None,
        mind_config: Optional[MindConfig] = None,
        network_config: Optional[NetworkConfig] = None,
        store_data: bool = True,
        trace: bool = False,
        trace_capacity: int = 1 << 16,
        telemetry: bool = False,
        telemetry_window_us: float = 500.0,
    ):
        config = ClusterConfig(
            num_compute_blades=num_compute_blades,
            num_memory_blades=num_memory_blades,
            store_data=store_data,
            trace=trace,
            trace_capacity=trace_capacity,
            telemetry=telemetry,
            telemetry_window_us=telemetry_window_us,
        )
        if cache_capacity_pages is not None:
            config.cache_capacity_pages = cache_capacity_pages
        if mind_config is not None:
            config.mind = mind_config
        if network_config is not None:
            config.network = network_config
        self.cluster = MindCluster(config)

    @property
    def controller(self):
        return self.cluster.controller

    @property
    def stats(self):
        return self.cluster.stats

    @property
    def tracer(self):
        """The cluster's event tracer (records only when ``trace=True``)."""
        return self.cluster.tracer

    def capture_telemetry(self) -> None:
        """Snapshot switch-resource peaks and queueing waits into stats."""
        self.cluster.capture_telemetry()

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self.cluster.engine.now

    def spawn_process(self, name: str = "proc") -> MindProcess:
        task = self.controller.sys_exec(name)
        return MindProcess(self, task)

    def run_concurrently(self, gens: List[Generator]) -> List:
        """Run several thread generators concurrently; returns their values."""
        return self.cluster.run_all(gens)

    # -- fault injection ---------------------------------------------------------

    def enable_failover(self, config=None):
        """Arm the switch fail-over path (control-plane replication plus a
        standby backup switch).  Returns the orchestrator so callers can
        schedule crashes (``crash_at``) or inspect outage windows."""
        return self.cluster.enable_failover(config)

    def inject_faults(self, plan):
        """Arm a :class:`repro.faults.FaultPlan` on the running rack."""
        return self.cluster.inject_faults(plan)
