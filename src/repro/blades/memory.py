"""Memory blade: a passive, CPU-less page store (Sections 3.2 and 6.2).

MIND memory blades run *no* data-path logic: one-sided RDMA requests are
served entirely by the NIC, which is why the model only charges NIC/DRAM
service time (in ``repro.sim.rdma``) and the blade itself is a plain page
store addressed by physical address.  The single CPU-involving step in the
paper -- registering physical memory with the NIC at boot -- is represented
by :meth:`register`.

Payload storage is optional: API-level users (e.g. the KVS example) get
real bytes with coherence-enforced visibility; trace replays can disable it
to keep large simulations cheap.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.network import Network, PAGE_SIZE, Port

ZERO_PAGE = bytes(PAGE_SIZE)


class MemoryBlade:
    """One network-attached memory blade."""

    def __init__(
        self,
        blade_id: int,
        network: Network,
        capacity_bytes: int,
        store_data: bool = True,
    ):
        if capacity_bytes <= 0 or capacity_bytes % PAGE_SIZE:
            raise ValueError("capacity must be a positive multiple of the page size")
        self.blade_id = blade_id
        self.capacity_bytes = capacity_bytes
        self.store_data = store_data
        self.port: Port = network.attach(f"mem{blade_id}")
        self._pages: Dict[int, bytes] = {}
        self.registered = False
        self.reads_served = 0
        self.writes_served = 0
        #: fault injection: NIC/DRAM service-time multiplier (a "slow blade"
        #: interval sets it > 1) and a hard pause (a crashed/stalled blade
        #: answers nothing; requests are lost and the switch retransmits).
        self.slow_factor = 1.0
        self._paused = False
        self.requests_refused = 0

    # -- fault injection ---------------------------------------------------

    @property
    def available(self) -> bool:
        return not self._paused

    def pause(self) -> None:
        """Stop serving requests (crash/stall interval); in-flight and new
        requests are dropped, to be recovered by retransmission."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def service_us(self, base_us: float) -> float:
        """NIC/DRAM service time under the current slowdown factor."""
        return base_us * self.slow_factor

    def refuse(self) -> None:
        """Account one request lost to an unavailable blade."""
        self.requests_refused += 1

    def register(self) -> None:
        """Boot-time: register physical memory with the RDMA NIC."""
        self.registered = True

    def _check_pa(self, pa: int) -> int:
        page_pa = pa - (pa % PAGE_SIZE)
        if not 0 <= page_pa < self.capacity_bytes:
            raise ValueError(
                f"pa {pa:#x} outside blade {self.blade_id} capacity "
                f"{self.capacity_bytes:#x}"
            )
        return page_pa

    def read_page(self, pa: int) -> Optional[bytes]:
        """NIC-served one-sided READ: returns page payload (zeros if never
        written) or None when payload storage is disabled."""
        page_pa = self._check_pa(pa)
        self.reads_served += 1
        if not self.store_data:
            return None
        return self._pages.get(page_pa, ZERO_PAGE)

    def write_page(self, pa: int, data: Optional[bytes]) -> None:
        """NIC-served one-sided WRITE: store a page payload."""
        page_pa = self._check_pa(pa)
        self.writes_served += 1
        if not self.store_data or data is None:
            return
        if len(data) != PAGE_SIZE:
            padded = bytearray(PAGE_SIZE)
            padded[: len(data)] = data
            data = bytes(padded)
        self._pages[page_pa] = bytes(data)

    @property
    def resident_pages(self) -> int:
        return len(self._pages)
