"""Blade substrates: compute-blade kernel model and passive memory blades."""

from .cache import CachedPage, InvalidationOutcome, PageCache
from .compute import ComputeBlade, SegmentationFault
from .consistency import ConsistencyModel, StoreBuffer
from .memory import MemoryBlade, ZERO_PAGE
from .tlb import PageTableEntry, PteTable

__all__ = [
    "CachedPage",
    "ComputeBlade",
    "ConsistencyModel",
    "InvalidationOutcome",
    "MemoryBlade",
    "PageCache",
    "PageTableEntry",
    "PteTable",
    "SegmentationFault",
    "StoreBuffer",
    "ZERO_PAGE",
]
