"""Compute-blade DRAM page cache.

Under partial disaggregation each compute blade keeps a few GB of local
DRAM used exclusively as a *cache* of remote pages (Section 2.1).  The
implementation mirrors the paper's description of their LegoOS-style cache
with coherence support (Section 6.1): pages are cached at 4 KB granularity
with per-page permissions, the set of writable (potentially dirty) pages is
tracked so a region invalidation can flush exactly the dirty pages it
covers, and capacity misses evict LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.network import PAGE_SIZE
from ..core.vma import align_down


@dataclass
class CachedPage:
    """One resident page: payload plus permission/dirty metadata."""

    va: int
    data: Optional[bytearray]
    writable: bool = False
    dirty: bool = False


@dataclass
class InvalidationOutcome:
    """What a region invalidation did to this cache (for the ACK)."""

    flushed: List[CachedPage] = field(default_factory=list)
    dropped: int = 0
    downgraded: int = 0

    @property
    def pages_affected(self) -> int:
        return len(self.flushed) + self.dropped + self.downgraded


class PageCache:
    """LRU page cache with writable-set tracking and region invalidation."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("cache needs at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, CachedPage]" = OrderedDict()
        self._writable: Dict[int, CachedPage] = {}
        self.hits = 0
        self.misses = 0
        self.upgrades = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, va: int) -> bool:
        return align_down(va, PAGE_SIZE) in self._pages

    # -- access path ---------------------------------------------------------

    def lookup(self, va: int, write: bool) -> Optional[CachedPage]:
        """Cache hit check; returns the page only if the access is allowed.

        A write to a resident read-only page is a *permission miss* (counted
        as an upgrade): the caller must fault to run the S->M transition.
        """
        page_va = va - (va % PAGE_SIZE)
        page = self._pages.get(page_va)
        if page is None:
            self.misses += 1
            return None
        if write and not page.writable:
            self.upgrades += 1
            return None
        self.hits += 1
        self._pages.move_to_end(page_va)
        if write:
            page.dirty = True
        return page

    def consume_hit_run(
        self,
        vas,
        writes,
        start: int,
        end: int,
        debt: float,
        debt_limit: float,
        step: float,
    ):
        """Retire a run of consecutive cache hits in one call (batched replay).

        Walks ``vas[start:end]`` applying exactly the per-access hit
        semantics of :meth:`lookup` (hit count, LRU touch, dirty mark on
        writes), accumulating ``step`` microseconds of local-time debt per
        hit.  Stops *without consuming the access* at the first miss or
        permission miss -- the caller re-runs :meth:`lookup` on that access
        so the miss/upgrade is counted exactly once (the terminating probe
        here neither counts nor touches the LRU).  Stops *after consuming
        the access* once ``debt`` reaches ``debt_limit``, matching the
        per-access loop, which pays its debt after the hit that crossed the
        threshold.  Returns ``(next_index, debt)``.
        """
        pages = self._pages
        get = pages.get
        move = pages.move_to_end
        hits = 0
        i = start
        while i < end:
            va = vas[i]
            page_va = va - (va % PAGE_SIZE)
            page = get(page_va)
            if page is None:
                break
            if writes[i]:
                if not page.writable:
                    break
                page.dirty = True
            move(page_va)
            hits += 1
            i += 1
            debt += step
            if debt >= debt_limit:
                break
        self.hits += hits
        return i, debt

    def peek(self, va: int) -> Optional[CachedPage]:
        """Non-mutating lookup (no LRU update, no permission check)."""
        return self._pages.get(align_down(va, PAGE_SIZE))

    # -- fills & eviction ------------------------------------------------------

    def insert(
        self, va: int, data: Optional[bytes], writable: bool
    ) -> List[CachedPage]:
        """Fill a page after a fault; returns evicted pages (dirty ones must
        be flushed by the caller before it reuses the frame)."""
        page_va = align_down(va, PAGE_SIZE)
        existing = self._pages.get(page_va)
        if existing is not None:
            # Permission upgrade re-fill: refresh payload and writability.
            existing.data = bytearray(data) if data is not None else existing.data
            existing.writable = existing.writable or writable
            if writable:
                self._writable[page_va] = existing
            self._pages.move_to_end(page_va)
            return []
        evicted: List[CachedPage] = []
        while len(self._pages) >= self.capacity_pages:
            _va, victim = self._pages.popitem(last=False)
            self._writable.pop(victim.va, None)
            evicted.append(victim)
        page = CachedPage(
            page_va, bytearray(data) if data is not None else None, writable
        )
        self._pages[page_va] = page
        if writable:
            self._writable[page_va] = page
        return evicted

    def drop(self, va: int) -> Optional[CachedPage]:
        page_va = align_down(va, PAGE_SIZE)
        page = self._pages.pop(page_va, None)
        if page is not None:
            self._writable.pop(page_va, None)
        return page

    # -- invalidation ------------------------------------------------------------

    def writable_pages_in(self, base: int, size: int) -> List[CachedPage]:
        return [
            p for va, p in self._writable.items() if base <= va < base + size
        ]

    def pages_in(self, base: int, size: int) -> List[CachedPage]:
        return [p for va, p in self._pages.items() if base <= va < base + size]

    def invalidate_region(
        self, base: int, size: int, downgrade_to_shared: bool, keep_dirty: bool = False
    ) -> InvalidationOutcome:
        """Apply a region invalidation (Section 6.1).

        Dirty pages are returned for write-back.  With ``downgrade_to_shared``
        (an M->S transition at the old owner) pages stay resident read-only;
        otherwise every page in the region is dropped.  ``keep_dirty``
        (MOESI's M->O) write-protects but *keeps* pages dirty and unflushed:
        this blade remains the data's only up-to-date holder.
        """
        outcome = InvalidationOutcome()
        for page in self.pages_in(base, size):
            if downgrade_to_shared and keep_dirty:
                page.writable = False
                self._writable.pop(page.va, None)
                outcome.downgraded += 1
                continue
            if page.dirty:
                outcome.flushed.append(page)
            if downgrade_to_shared:
                page.writable = False
                page.dirty = False
                self._writable.pop(page.va, None)
                if page not in outcome.flushed:
                    outcome.downgraded += 1
            else:
                self._pages.pop(page.va, None)
                self._writable.pop(page.va, None)
                if not page.dirty:
                    outcome.dropped += 1
        return outcome

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.upgrades
        return self.hits / total if total else 0.0
