"""Compute blade: page-fault-driven transparent access to remote memory.

This models the paper's modified Linux kernel at the compute blade
(Section 6.1):

- LOAD/STOREs to cached pages hit local DRAM (<100 ns) and never leave the
  blade.
- A miss (or a write to a read-only cached page) raises a page fault; the
  kernel posts a one-sided RDMA request *for the virtual address* to the
  switch, which runs protection, translation and coherence, and returns the
  page.  The receive buffer is the application page itself, so there are no
  extra copies; PTEs are populated before control returns.
- Dirty LRU evictions write the page back to its memory blade.
- Invalidation requests from the switch flush all writable pages in the
  region, unmap PTEs, and perform a synchronous TLB shootdown; invalidation
  handling is serialized per blade, producing the queueing delays measured
  in Fig. 7 (right).

Thread execution (:meth:`run_thread`) replays a memory-access trace under
TSO (the hardware-enforced default) or PSO (the simulated relaxation of
Section 7.1): under PSO, write faults are issued asynchronously through a
bounded store buffer and only a subsequent read to a pending page blocks.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, Optional, Tuple

from ..core.coherence import CoherenceProtocol, FaultResult
from ..core.vma import align_down
from ..obs.spans import SpanCursor
from ..sim.engine import Engine, Event, Resource
from ..sim.network import Network, NetworkConfig, PAGE_SIZE
from ..sim.stats import StatsCollector
from ..switchsim.packets import (
    AccessType,
    InvalidationAck,
    InvalidationRequest,
    MemRequest,
    PacketVerdict,
)
from ..workloads.trace import AccessOrStream, AccessStream
from .cache import PageCache
from .consistency import ConsistencyModel, StoreBuffer
from .tlb import PteTable


class SegmentationFault(Exception):
    """The switch rejected an access (no entry or permission mismatch)."""


#: Flush accumulated local-DRAM time to the event loop at this granularity;
#: batching hit costs keeps the event count proportional to faults.
LOCAL_TIME_BATCH_US = 25.0

#: PTE population after a fault completes (kernel mm critical section).
PTE_FIXUP_US = 0.3


class ComputeBlade:
    """One compute blade: local cache + kernel fault/invalidation paths."""

    #: which rack this blade physically sits in (set by a multi-rack
    #: fabric; a stand-alone cluster is all rack 0).
    home_rack: int = 0

    def __init__(
        self,
        blade_id: int,
        engine: Engine,
        network: Network,
        datapath: CoherenceProtocol,
        cache_capacity_pages: int,
        stats: StatsCollector,
    ):
        self.blade_id = blade_id
        self.engine = engine
        self.config: NetworkConfig = network.config
        self.datapath = datapath
        self.cache = PageCache(cache_capacity_pages)
        self.ptes = PteTable()
        self.stats = stats
        self.port = network.attach(f"compute{blade_id}")
        #: serializes the kernel's memory-management critical sections: page
        #: fault entry/PTE fixup and invalidation processing contend on it,
        #: producing the invalidation queueing delay of Fig. 7 (right).
        self.kernel_lock = Resource(
            engine, capacity=1, name=f"blade{blade_id}.kernel_lock"
        )
        #: cumulative time TLB-shootdown IPIs have stolen from every core on
        #: this blade; running threads observe it and slow down accordingly.
        self.steal_time_us = 0.0
        self._inflight_faults: Dict[int, Event] = {}
        datapath.register_compute_blade(
            self.port, self.handle_invalidation, serve_page=self.serve_page
        )

    # -- invalidation handling (switch -> blade) ------------------------------

    def handle_invalidation(self, inval: InvalidationRequest) -> Generator:
        """Kernel invalidation path; returns an :class:`InvalidationAck`.

        Serialized per blade: concurrent invalidations queue, and the wait
        is reported in the ACK as queueing delay.  A :class:`SpanCursor`
        partitions the handling time into the queue/process/tlb components
        Fig. 7 (right) plots (the ``invalidation`` breakdown).
        """
        tracer = self.engine.tracer
        spans = SpanCursor(
            self.engine,
            self.stats,
            "invalidation",
            trace_cat="blade",
            track=tracer.track(f"blade{self.blade_id}") if tracer.enabled else 0,
        )
        if self.kernel_lock.try_acquire():
            queue_delay = 0.0
        else:
            queue_delay = (yield self.kernel_lock.acquire()) or 0.0
        spans.mark("queue")
        try:
            self.stats.incr("invalidations_received")
            yield self.config.invalidation_processing_us
            target_resident = (
                inval.target_va >= 0 and self.cache.peek(inval.target_va) is not None
            )
            outcome = self.cache.invalidate_region(
                inval.region_base,
                inval.region_size,
                inval.downgrade_to_shared,
                keep_dirty=inval.keep_dirty,
            )
            spans.mark("process")
            tlb_us = self.ptes.shootdown_region(
                inval.region_base, inval.region_size, inval.downgrade_to_shared
            )
            if tlb_us:
                # The shootdown IPIs every core: application threads on this
                # blade lose the same time (they observe steal_time_us).
                self.steal_time_us += tlb_us
                yield tlb_us
                spans.mark("tlb")
            for page in outcome.flushed:
                data = bytes(page.data) if page.data is not None else None
                # Asynchronous write-back: the ACK does not wait for the
                # flush; the switch makes fetches of these pages wait.
                self.datapath.flush_page_async(self.port, page.va, data)
            affected = outcome.pages_affected
            false_invals = max(0, affected - (1 if target_resident else 0))
            return InvalidationAck(
                region_base=inval.region_base,
                src_port=self.port.port_id,
                flushed_pages=len(outcome.flushed),
                dropped_pages=outcome.dropped + outcome.downgraded,
                false_invalidations=false_invals,
                queue_delay_us=queue_delay,
                tlb_shootdown_us=tlb_us,
            )
        finally:
            self.kernel_lock.release()

    def serve_page(self, page_va: int) -> Optional[bytes]:
        """MOESI cache-to-cache path: hand the switch a copy of a cached
        page (the region's Owner supplies readers).  Returns None if the
        page is no longer resident."""
        page = self.cache.peek(page_va)
        if page is None:
            return None
        self.stats.incr("pages_served_from_cache")
        # b"" = resident but payloads disabled (trace-replay mode); the
        # switch still performs the cache-to-cache transfer timing.
        return bytes(page.data) if page.data is not None else b""

    # -- fault path (blade -> switch) -------------------------------------------

    def _fault(self, pdid: int, page_va: int, write: bool) -> Generator:
        """Page-fault a page in, deduplicating concurrent faults per page.

        Returns the resident :class:`CachedPage` with the needed permission.
        """
        while True:
            inflight = self._inflight_faults.get(page_va)
            if inflight is None:
                break
            yield inflight
            # Only a hit if *this* domain now holds a sufficient PTE; a
            # concurrent fault by another domain must not leak access.
            pte = self.ptes.entry(page_va, pdid)
            if pte is not None and (not write or pte.writable):
                page = self.cache.lookup(page_va, write)
                if page is not None:
                    return page
        ev = self.engine.event()
        self._inflight_faults[page_va] = ev
        t_fault = self.engine.now
        try:
            # Fault entry runs a kernel mm critical section; invalidation
            # handling contends on the same lock.
            if not self.kernel_lock.try_acquire():
                yield self.kernel_lock.acquire()
            try:
                yield self.config.fault_overhead_us
            finally:
                self.kernel_lock.release()
            req = MemRequest(
                va=page_va,
                pdid=pdid,
                access=AccessType.WRITE if write else AccessType.READ,
                src_port=self.port.port_id,
            )
            result: FaultResult = yield from self.engine.subtask(
                self.datapath.handle_fault(req)
            )
            while result.stale:
                # A switch fail-over landed while this transaction was in
                # flight: its directory effects may be gone.  Discard the
                # result (never insert a stale page) and re-issue against
                # the rebuilt data plane.
                self.stats.incr("faults_reissued")
                result = yield from self.engine.subtask(
                    self.datapath.handle_fault(req)
                )
            if result.coalesced:
                # The switch folded this read onto another blade's in-flight
                # fetch of the same page (one RDMA, N completions).
                self.stats.incr("faults_coalesced")
            if result.verdict is not PacketVerdict.ALLOW:
                raise SegmentationFault(
                    f"pdid={pdid} va={page_va:#x} "
                    f"{'write' if write else 'read'}: {result.verdict.value}"
                )
            # PTE population is another short mm critical section.
            if not self.kernel_lock.try_acquire():
                yield self.kernel_lock.acquire()
            try:
                yield PTE_FIXUP_US
                evicted = self.cache.insert(page_va, result.data, writable=write)
                self.ptes.map_page(page_va, writable=write, pdid=pdid)
            finally:
                self.kernel_lock.release()
            page = self.cache.peek(page_va)
            if write:
                page.dirty = True
            for victim in evicted:
                self.ptes.unmap_page(victim.va)
                self.stats.incr("evictions")
                if victim.dirty:
                    self.stats.incr("eviction_flushes")
                    data = bytes(victim.data) if victim.data is not None else None
                    self.datapath.flush_page_async(self.port, victim.va, data)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.complete(
                    t_fault,
                    self.engine.now - t_fault,
                    "blade",
                    f"fault:{'w' if write else 'r'}:{page_va:#x}",
                    track=tracer.track(f"blade{self.blade_id}"),
                )
            return page
        finally:
            del self._inflight_faults[page_va]
            if not ev.triggered:
                ev.succeed()

    def ensure_page(self, pdid: int, va: int, write: bool) -> Generator:
        """Resident page with the needed permission (hit or fault).

        A cache hit counts only if *this domain* holds a local PTE with the
        needed permission: cached pages do not leak across protection
        domains -- another domain's first touch faults to the switch, whose
        protection table arbitrates (Section 3.2).
        """
        va = int(va)
        pte = self.ptes.entry(va, pdid)
        if pte is not None and (not write or pte.writable):
            page = self.cache.lookup(va, write)
            if page is not None:
                yield self.config.dram_access_us
                return page
        page = yield from self._fault(pdid, align_down(va, PAGE_SIZE), write)
        return page

    # -- byte-granular API used by repro.api ------------------------------------

    def load_bytes(self, pdid: int, va: int, size: int) -> Generator:
        """Read ``size`` bytes at ``va`` (may span pages); returns bytes."""
        out = bytearray()
        cursor = int(va)
        remaining = size
        while remaining > 0:
            page = yield from self.ensure_page(pdid, cursor, write=False)
            offset = cursor - page.va
            take = min(remaining, PAGE_SIZE - offset)
            if page.data is not None:
                out += page.data[offset : offset + take]
            else:
                out += bytes(take)
            cursor += take
            remaining -= take
        return bytes(out)

    def store_bytes(self, pdid: int, va: int, data: bytes) -> Generator:
        """Write ``data`` at ``va`` (may span pages)."""
        cursor = int(va)
        view = memoryview(data)
        while view:
            page = yield from self.ensure_page(pdid, cursor, write=True)
            offset = cursor - page.va
            take = min(len(view), PAGE_SIZE - offset)
            if page.data is not None:
                page.data[offset : offset + take] = view[:take]
            page.dirty = True
            cursor += take
            view = view[take:]
        return None

    # -- trace-replay thread --------------------------------------------------

    def run_thread(
        self,
        pdid: int,
        accesses: AccessOrStream,
        consistency: ConsistencyModel = ConsistencyModel.TSO,
        store_buffer_capacity: int = 32,
    ) -> Generator:
        """Replay an access stream as one execution thread.

        ``accesses`` is ideally an :class:`AccessStream` (the traces'
        ``stream()`` form); any ``(va, is_write)`` iterable is coerced.
        Returns the number of accesses performed.  Local hits accumulate
        DRAM time and flush it to the event loop in batches.
        """
        stream = AccessStream.coerce(accesses)
        vas = stream.vas
        write_flags = stream.writes
        pso = consistency is ConsistencyModel.PSO
        if not pso and not self.engine.tracer.enabled:
            # Vectorized replay: retire whole cache-hit runs per generator
            # resumption.  PSO (store-buffer interleavings) and traced runs
            # (per-access span cadence) keep the per-access loop below.
            result = yield from self._run_thread_batched(
                pdid, vas, write_flags, len(vas)
            )
            return result
        store_buffer = StoreBuffer(store_buffer_capacity) if pso else None
        dram_access_us = self.config.dram_access_us
        cache_lookup = self.cache.lookup
        local_debt = 0.0
        count = len(vas)
        steal_seen = self.steal_time_us
        for i in range(count):
            va = vas[i]
            is_write = write_flags[i]
            if self.steal_time_us != steal_seen:
                # Pay for TLB-shootdown IPIs that interrupted this core.
                local_debt += self.steal_time_us - steal_seen
                steal_seen = self.steal_time_us
            if pso:
                page_va = va - (va % PAGE_SIZE)
                if not is_write:
                    pending = store_buffer.pending_for(page_va)
                    if pending is not None and not pending.triggered:
                        if local_debt:
                            yield local_debt
                            local_debt = 0.0
                        yield pending
            hit = cache_lookup(va, is_write)
            if hit is not None:
                local_debt += dram_access_us
                if local_debt >= LOCAL_TIME_BATCH_US:
                    yield local_debt
                    local_debt = 0.0
                continue
            if local_debt:
                yield local_debt
                local_debt = 0.0
            if pso and is_write:
                yield from self._issue_async_write(pdid, page_va, store_buffer)
            else:
                page = yield from self._fault(
                    pdid, va - (va % PAGE_SIZE), bool(is_write)
                )
                if is_write:
                    page.dirty = True
        if pso:
            drain = store_buffer.drain_events()
            if drain:
                yield self.engine.all_of(drain)
        if local_debt:
            yield local_debt
        return count

    def _run_thread_batched(self, pdid: int, vas, write_flags, count) -> Generator:
        """Batched replay body of :meth:`run_thread` (TSO, untraced).

        Access-for-access equivalent to the per-access loop: a batch covers
        only accesses that provably cannot fault (resident with the needed
        permission), and nothing a batch observes -- cache contents, the
        steal-time account -- can change without this thread yielding, which
        batches never do.  The first miss or permission miss falls out to
        the exact per-access fault path; the debt-flush points (crossing
        ``LOCAL_TIME_BATCH_US``, and pre-fault) are the per-access loop's.
        """
        engine = self.engine
        consume = self.cache.consume_hit_run
        cache_lookup = self.cache.lookup
        dram_access_us = self.config.dram_access_us
        local_debt = 0.0
        steal_seen = self.steal_time_us
        i = 0
        while i < count:
            steal_now = self.steal_time_us
            if steal_now != steal_seen:
                # Pay for TLB-shootdown IPIs that interrupted this core.
                local_debt += steal_now - steal_seen
                steal_seen = steal_now
            j, local_debt = consume(
                vas, write_flags, i, count,
                local_debt, LOCAL_TIME_BATCH_US, dram_access_us,
            )
            if j > i:
                engine.batched_retires += 1
                i = j
                if local_debt >= LOCAL_TIME_BATCH_US:
                    yield local_debt
                    local_debt = 0.0
                continue
            va = vas[i]
            is_write = write_flags[i]
            # Count the miss/upgrade exactly once (the batch probe didn't).
            cache_lookup(va, is_write)
            if local_debt:
                yield local_debt
                local_debt = 0.0
            page = yield from self._fault(pdid, va - (va % PAGE_SIZE), bool(is_write))
            if is_write:
                page.dirty = True
            i += 1
        if local_debt:
            yield local_debt
        return count

    def _issue_async_write(
        self, pdid: int, page_va: int, store_buffer: StoreBuffer
    ) -> Generator:
        """PSO write issue: hand the fault to the network asynchronously."""
        while store_buffer.full:
            oldest = store_buffer.oldest()
            if oldest is None:
                break
            yield oldest
        completion = self.engine.event()

        def write_runner() -> Generator:
            try:
                page = yield from self._fault(pdid, page_va, True)
                page.dirty = True
            finally:
                store_buffer.complete(page_va)
                completion.succeed()

        self.engine.process(write_runner(), name=f"pso-write-{page_va:#x}")
        store_buffer.add(page_va, completion)
        # Issuing costs only a store-buffer insert locally.
        yield self.config.dram_access_us
