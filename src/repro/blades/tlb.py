"""Compute-blade PTE table and TLB-shootdown accounting.

While MIND hides disaggregation from applications, each compute blade still
runs a local page-table mapping MIND virtual addresses to local DRAM frames
for cached pages (footnote 2 of the paper).  Crucially the local mapping is
*per protection domain*: the blade cache stores permissions for cached
pages (Section 3.2), so a page cached on behalf of one domain is not
implicitly accessible to another -- a different domain's first access must
fault to the switch, where the protection table arbitrates.

An invalidation that unmaps a page or downgrades its permission forces a
*synchronous TLB shootdown*, which the paper measures at several
microseconds and identifies as a main component of invalidation latency
(Fig. 7 right, citing LATR).  PTE presence/writability must mirror the
page cache, an invariant the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim.network import PAGE_SIZE
from ..core.vma import align_down


@dataclass
class PageTableEntry:
    """A local PTE: one domain's mapping of a cached page."""

    pdid: int
    va: int
    writable: bool


class PteTable:
    """Per-blade, per-domain page table plus TLB shootdown cost model."""

    #: base cost of one synchronous shootdown (inter-processor interrupts,
    #: waiting for all cores to ACK); matches the "several microseconds"
    #: of Section 7.2.
    SHOOTDOWN_BASE_US = 3.0
    #: incremental cost per additional unmapped page in the same batch.
    SHOOTDOWN_PER_PAGE_US = 0.15

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], PageTableEntry] = {}
        #: page va -> set of domains mapping it (for page-keyed teardown).
        self._by_page: Dict[int, Set[int]] = {}
        self.shootdowns = 0
        self.pages_shot_down = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, va: int) -> bool:
        """True if *any* domain maps the page."""
        return align_down(int(va), PAGE_SIZE) in self._by_page

    def map_page(self, va: int, writable: bool, pdid: int = 0) -> None:
        page_va = align_down(int(va), PAGE_SIZE)
        self._entries[(pdid, page_va)] = PageTableEntry(pdid, page_va, writable)
        self._by_page.setdefault(page_va, set()).add(pdid)

    def entry(self, va: int, pdid: int = 0) -> Optional[PageTableEntry]:
        return self._entries.get((pdid, align_down(int(va), PAGE_SIZE)))

    def unmap_page(self, va: int) -> bool:
        """Remove every domain's mapping of the page (cache drop path)."""
        page_va = align_down(int(va), PAGE_SIZE)
        pdids = self._by_page.pop(page_va, None)
        if not pdids:
            return False
        for pdid in pdids:
            self._entries.pop((pdid, page_va), None)
        return True

    def unmap_domain_range(self, pdid: int, base: int, size: int) -> int:
        """Remove one domain's PTEs in a VA range (permission revocation).

        Other domains' mappings of the same pages are untouched.  Returns
        the number of PTEs removed.
        """
        removed = 0
        for (e_pdid, va) in list(self._entries):
            if e_pdid == pdid and base <= va < base + size:
                del self._entries[(e_pdid, va)]
                holders = self._by_page.get(va)
                if holders is not None:
                    holders.discard(pdid)
                    if not holders:
                        del self._by_page[va]
                removed += 1
        return removed

    def entries_in(self, base: int, size: int) -> List[PageTableEntry]:
        return [
            e for (_pdid, va), e in self._entries.items() if base <= va < base + size
        ]

    def pages_in(self, base: int, size: int) -> List[int]:
        return [va for va in self._by_page if base <= va < base + size]

    def shootdown_region(
        self, base: int, size: int, downgrade_to_shared: bool
    ) -> float:
        """Unmap (or write-protect) the region's PTEs; returns the
        synchronous shootdown cost in microseconds (0 if nothing mapped)."""
        affected = self.entries_in(base, size)
        if not affected:
            return 0.0
        if downgrade_to_shared:
            changed = 0
            for entry in affected:
                if entry.writable:
                    entry.writable = False
                    changed += 1
            if changed == 0:
                return 0.0
            count = changed
        else:
            for page_va in self.pages_in(base, size):
                self.unmap_page(page_va)
            count = len(affected)
        self.shootdowns += 1
        self.pages_shot_down += count
        return self.SHOOTDOWN_BASE_US + self.SHOOTDOWN_PER_PAGE_US * (count - 1)
