"""Memory consistency models at the compute blade (Section 6.1).

MIND's page-fault-driven implementation on x86 is restricted to **TSO**:
every write fault blocks the thread until the coherence transaction
completes, because x86 cannot trap reads without also trapping writes.

**PSO** -- which GAM uses, and which the paper *simulates* for MIND-PSO --
lets writes to cached regions propagate asynchronously: the thread keeps
executing after issuing a write, and only blocks when a subsequent *read*
touches a page whose write is still in flight (or when the store buffer
fills).  We implement both; MIND-PSO / MIND-PSO+ in Fig. 5 (center) come
from running the identical trace under this model.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..sim.engine import Event


class ConsistencyModel(enum.Enum):
    """Which ordering the compute blade enforces for write faults."""

    TSO = "tso"
    PSO = "pso"


class StoreBuffer:
    """Per-thread buffer of in-flight (asynchronous) write transactions.

    Models the bounded buffering PSO needs: each pending entry is the
    completion event of a write fault still executing in the network.  A
    read to a pending page must wait (PSO blocks reads, not writes); when
    the buffer is full the oldest entry must drain before a new write can
    be issued.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("store buffer needs capacity >= 1")
        self.capacity = capacity
        self._pending: Dict[int, Event] = {}
        self._order: List[int] = []
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    def pending_for(self, page_va: int) -> Optional[Event]:
        return self._pending.get(page_va)

    def oldest(self) -> Optional[Event]:
        while self._order:
            ev = self._pending.get(self._order[0])
            if ev is not None and not ev.triggered:
                return ev
            self._order.pop(0)
        return None

    def add(self, page_va: int, completion: Event) -> None:
        if page_va in self._pending:
            # A second write to the same in-flight page coalesces.
            return
        self._pending[page_va] = completion
        self._order.append(page_va)
        self.peak_occupancy = max(self.peak_occupancy, len(self._pending))

    def complete(self, page_va: int) -> None:
        self._pending.pop(page_va, None)

    def drain_events(self) -> List[Event]:
        """All outstanding completions (for barriers / thread exit)."""
        return [ev for ev in self._pending.values() if not ev.triggered]
