"""repro.obs: observability for simulation runs.

Four pieces, threaded through the whole stack:

- :class:`Tracer` -- ring-buffered structured event records (spans,
  instants, counters) exportable as JSONL or Chrome trace-event JSON.
- :class:`SpanCursor` -- partitions a transaction's wall time into named
  components, feeding both the tracer and the stats breakdowns (the
  Fig. 7-style latency decompositions).
- :class:`GaugeSampler` -- a background simulation process sampling
  switch-resource occupancy and queue depths into time series.
- :class:`RunReport` -- a per-run digest (latency percentiles, breakdown
  consistency, queueing hotspots, switch peaks), also available via
  ``RunResult.report()`` and ``python -m repro report``.

Everything is deterministic (timestamps come from ``engine.now``) and
zero-cost when disabled (a single ``tracer.enabled`` check per site).
"""

from .gauges import GaugeSampler
from .spans import SpanCursor
from .tracer import NULL_TRACER, Tracer

__all__ = [
    "GaugeSampler",
    "NULL_TRACER",
    "RunReport",
    "SpanCursor",
    "Tracer",
]


def __getattr__(name: str):
    # RunReport is loaded lazily: report.py imports repro.sim.stats, which
    # would cycle with sim.engine's import of repro.obs.tracer otherwise.
    if name == "RunReport":
        from .report import RunReport

        return RunReport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
