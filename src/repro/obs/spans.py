"""Span instrumentation: partition a transaction's wall time by component.

The coherence fault path and the blade invalidation path are long
generator-based transactions whose latency the paper decomposes into
components (Fig. 7).  A :class:`SpanCursor` rides along such a transaction:
each :meth:`SpanCursor.mark` closes the segment since the previous mark,
folds its duration into the run's :class:`~repro.sim.stats.StatsCollector`
breakdown, and (when tracing is enabled) emits a matching span record.

Because the marks *partition* ``[t0, now)``, the per-component breakdown
sums exactly to the measured end-to-end latency -- the consistency the
run report asserts -- with no hand-maintained accounting to drift.

The transaction engine adds two queueing components to the fault
breakdown: ``queue_conflict`` (time parked in the pending-transaction
table behind a conflicting in-flight transaction) and ``coalesced_wait``
(time a Shared read spent riding another transaction's in-flight fetch
instead of issuing its own).  Both partition the same timeline, so the
sum-to-end-to-end invariant holds unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..sim.engine import Engine
    from ..sim.stats import StatsCollector


class SpanCursor:
    """Cursor over one transaction's timeline.

    ``category`` names the stats breakdown the segments accumulate into;
    ``trace_cat`` is the trace-record category (a subsystem name such as
    ``"coherence"`` or ``"blade"``).  Marks with zero elapsed time are
    skipped entirely so breakdowns only contain components that cost time.
    """

    __slots__ = ("engine", "stats", "category", "trace_cat", "track", "t0", "_t_last")

    def __init__(
        self,
        engine: "Engine",
        stats: "StatsCollector",
        category: str,
        trace_cat: Optional[str] = None,
        track: int = 0,
    ):
        self.engine = engine
        self.stats = stats
        self.category = category
        self.trace_cat = trace_cat or category
        self.track = track
        self.t0 = engine.now
        self._t_last = engine.now

    def mark(self, component: str) -> float:
        """Close the segment since the last mark as ``component``."""
        now = self.engine.now
        dur = now - self._t_last
        self._t_last = now
        if dur:
            self.stats.add_breakdown(self.category, component, dur)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.complete(
                    now - dur, dur, self.trace_cat, component, track=self.track
                )
        return dur

    def skip(self) -> None:
        """Advance past a segment without attributing it (rarely needed)."""
        self._t_last = self.engine.now

    def total(self) -> float:
        """Wall time elapsed since the cursor was opened."""
        return self.engine.now - self.t0
