"""Span instrumentation: partition a transaction's wall time by component.

The coherence fault path and the blade invalidation path are long
generator-based transactions whose latency the paper decomposes into
components (Fig. 7).  A :class:`SpanCursor` rides along such a transaction:
each :meth:`SpanCursor.mark` closes the segment since the previous mark,
folds its duration into the run's :class:`~repro.sim.stats.StatsCollector`
breakdown, and (when tracing is enabled) emits a matching span record.

Because the marks *partition* ``[t0, now)``, the per-component breakdown
sums exactly to the measured end-to-end latency -- the consistency the
run report asserts -- with no hand-maintained accounting to drift.

The transaction engine adds two queueing components to the fault
breakdown: ``queue_conflict`` (time parked in the pending-transaction
table behind a conflicting in-flight transaction) and ``coalesced_wait``
(time a Shared read spent riding another transaction's in-flight fetch
instead of issuing its own).  Both partition the same timeline, so the
sum-to-end-to-end invariant holds unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..sim.engine import Engine
    from ..sim.stats import StatsCollector


class SpanCursor:
    """Cursor over one transaction's timeline.

    ``category`` names the stats breakdown the segments accumulate into;
    ``trace_cat`` is the trace-record category (a subsystem name such as
    ``"coherence"`` or ``"blade"``).  Marks with zero elapsed time are
    skipped entirely so breakdowns only contain components that cost time.
    """

    __slots__ = ("engine", "stats", "category", "trace_cat", "track", "t0", "_t_last")

    def __init__(
        self,
        engine: "Engine",
        stats: "StatsCollector",
        category: str,
        trace_cat: Optional[str] = None,
        track: int = 0,
    ):
        self.engine = engine
        self.stats = stats
        self.category = category
        self.trace_cat = trace_cat or category
        self.track = track
        self.t0 = engine.now
        self._t_last = engine.now

    def mark(self, component: str) -> float:
        """Close the segment since the last mark as ``component``."""
        now = self.engine.now
        dur = now - self._t_last
        self._t_last = now
        if dur:
            self.stats.add_breakdown(self.category, component, dur)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.complete(
                    now - dur, dur, self.trace_cat, component, track=self.track
                )
        return dur

    def mark_split(
        self, component: str, split_us: float, split_component: str
    ) -> float:
        """Close the segment since the last mark as *two* components.

        ``split_us`` of the elapsed segment (clamped into ``[0, segment]``)
        is attributed to ``split_component`` and the remainder to
        ``component``.  The fault path uses this to pull deferred
        spine-tier time out of a wire leg: both pieces still cover exactly
        ``[t_last, now)``, so the breakdown keeps summing to the measured
        end-to-end latency no matter what the split claims.
        """
        now = self.engine.now
        dur = now - self._t_last
        self._t_last = now
        if not dur:
            return 0.0
        split = min(max(split_us, 0.0), dur)
        rest = dur - split
        tracer = self.engine.tracer
        if rest:
            self.stats.add_breakdown(self.category, component, rest)
            if tracer.enabled:
                tracer.complete(
                    now - dur, rest, self.trace_cat, component, track=self.track
                )
        if split:
            self.stats.add_breakdown(self.category, split_component, split)
            if tracer.enabled:
                tracer.complete(
                    now - split, split, self.trace_cat, split_component,
                    track=self.track,
                )
        return dur

    def mark_wire(self, component: str, *links) -> float:
        """Close a wire-leg segment, splitting out deferred spine time.

        Cross-rack legs traverse a
        :class:`~repro.sim.network.CompositePath` that banks the time its
        spine-tier segments cost; popping the banked time here attributes
        that share of the segment to ``"spine"`` and the rest to
        ``component``.  Plain links bank nothing, so this degrades to
        :meth:`mark`.  Under concurrent transactions on one path the
        pop is approximate (another transaction may have banked time we
        pop here) but the clamp in :meth:`mark_split` keeps the
        sum-to-end-to-end invariant exact regardless.
        """
        spine = 0.0
        for link in links:
            pop = getattr(link, "pop_deferred_us", None)
            if pop is not None:
                spine += pop()
        if spine:
            return self.mark_split(component, spine, "spine")
        return self.mark(component)

    def skip(self) -> None:
        """Advance past a segment without attributing it (rarely needed)."""
        self._t_last = self.engine.now

    def total(self) -> float:
        """Wall time elapsed since the cursor was opened."""
        return self.engine.now - self.t0
