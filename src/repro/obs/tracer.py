"""Structured event tracing for simulation runs.

The tracer is a ring-buffered sink of timestamped records that every layer
of the stack (engine, network, switch pipeline, coherence, blades) emits
into.  It is deliberately dependency-free: timestamps are supplied by the
caller (always ``engine.now``, never wall clock) so traces are a pure
function of the run's inputs and the tracer itself is picklable alongside
a :class:`repro.sim.stats.RunResult`.

Zero-cost when disabled: every instrumentation site guards its emission
with a single ``tracer.enabled`` check, and the shared :data:`NULL_TRACER`
keeps that check a plain attribute load on hot paths.

Records can be exported as JSONL (one record per line, stable key order --
the determinism tests compare these byte-for-byte) or in the Chrome
trace-event format that ``chrome://tracing`` / Perfetto load directly.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

#: record phases, mirroring the Chrome trace-event phase letters:
#: ``X`` complete (ts + duration), ``i`` instant, ``C`` counter.
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"

#: a record is ``(ts_us, dur_us, phase, category, name, track, args)``.
TraceRecord = Tuple[float, float, str, str, str, int, Optional[Dict[str, Any]]]


class Tracer:
    """Ring-buffered structured event sink.

    ``capacity`` bounds memory: once full, the oldest records are dropped
    (and counted in :attr:`dropped`).  ``enabled`` is the single switch
    instrumentation sites check before paying any recording cost.
    """

    __slots__ = ("enabled", "capacity", "_records", "_tracks", "dropped")

    def __init__(self, capacity: int = 1 << 16, enabled: bool = True):
        if capacity < 0:
            raise ValueError("tracer capacity must be >= 0")
        self.enabled = enabled
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self._tracks: Dict[str, int] = {}
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    # -- tracks ----------------------------------------------------------

    def track(self, name: str) -> int:
        """Stable integer id for a named track (a Chrome trace "thread")."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[name] = tid
        return tid

    # -- recording -------------------------------------------------------

    def _push(self, record: TraceRecord) -> None:
        if self.capacity == 0:
            self.dropped += 1
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    def complete(
        self,
        ts: float,
        dur: float,
        cat: str,
        name: str,
        track: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A span: work named ``name`` occupied ``[ts, ts + dur)``."""
        self._push((ts, dur, PHASE_COMPLETE, cat, name, track, args))

    def instant(
        self,
        ts: float,
        cat: str,
        name: str,
        track: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A zero-duration marker at ``ts``."""
        self._push((ts, 0.0, PHASE_INSTANT, cat, name, track, args))

    def counter(
        self, ts: float, cat: str, name: str, value: float, track: int = 0
    ) -> None:
        """One sample of a named scalar (queue depth, occupancy, ...)."""
        self._push((ts, 0.0, PHASE_COUNTER, cat, name, track, {"value": value}))

    # -- reading ---------------------------------------------------------

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def categories(self) -> List[str]:
        """Distinct record categories, in first-seen order."""
        seen: Dict[str, None] = {}
        for rec in self._records:
            seen.setdefault(rec[3])
        return list(seen)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    # -- export ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per record, stable key order (determinism-safe)."""
        out = io.StringIO()
        for ts, dur, ph, cat, name, track, args in self._records:
            obj = {"ts": ts, "dur": dur, "ph": ph, "cat": cat, "name": name, "tid": track}
            if args is not None:
                obj["args"] = args
            out.write(json.dumps(obj, sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def chrome_trace(
        self,
        pid: int = 0,
        counter_series: Optional[Dict[str, List[Tuple[float, float]]]] = None,
    ) -> Dict[str, Any]:
        """The run as a Chrome trace-event document.

        The result loads directly in ``chrome://tracing`` or Perfetto;
        timestamps are simulated microseconds, which is also the unit the
        trace-event format expects.

        ``counter_series`` injects externally recorded scalar series
        (e.g. the :class:`~repro.obs.gauges.GaugeSampler` time series from
        ``stats.timeseries``) as counter tracks.  Unlike ring-buffered
        counter records, injected series are complete: they never lose
        early samples to ring eviction under heavy span traffic.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
            for name, tid in sorted(self._tracks.items(), key=lambda kv: kv[1])
        ]
        for ts, dur, ph, cat, name, track, args in self._records:
            ev: Dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": ph,
                "ts": ts,
                "pid": pid,
                "tid": track,
            }
            if ph == PHASE_COMPLETE:
                ev["dur"] = dur
            if ph == PHASE_INSTANT:
                ev["s"] = "t"  # thread-scoped instant
            if ph == PHASE_COUNTER and args is not None and "value" in args:
                # Chrome labels each counter series by its args key, so
                # key the sample by the counter's own (leaf) name instead
                # of a generic "value" -- one named series per counter.
                ev["args"] = {name.rpartition(".")[2]: args["value"]}
            elif args is not None:
                ev["args"] = args
            events.append(ev)
        for series_name in sorted(counter_series or ()):
            leaf = series_name.rpartition(".")[2]
            for ts, value in counter_series[series_name]:
                events.append(
                    {
                        "name": series_name,
                        "cat": "gauge",
                        "ph": PHASE_COUNTER,
                        "ts": ts,
                        "pid": pid,
                        "tid": 0,
                        "args": {leaf: value},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(
        self,
        path: str,
        pid: int = 0,
        counter_series: Optional[Dict[str, List[Tuple[float, float]]]] = None,
    ) -> None:
        with open(path, "w") as fh:
            json.dump(
                self.chrome_trace(pid=pid, counter_series=counter_series),
                fh,
                sort_keys=True,
            )


#: The shared disabled tracer: hot paths check ``tracer.enabled`` once and
#: skip all recording.  Capacity 0 so even direct emission stores nothing.
NULL_TRACER = Tracer(capacity=0, enabled=False)
