"""Background sampling of switch-resource and queueing gauges.

Fig. 8's occupancy plots are time series of data-plane state: directory
SRAM slots in use, match-action rule counts, queue depths.  The
:class:`GaugeSampler` is a simulation process that polls registered gauge
callables at a fixed simulated-time interval and records each sample both
as a stats time series (for plotting) and as a trace counter event (so
``chrome://tracing`` renders occupancy tracks alongside spans).

The sampler is a perpetual background process, like the Bounded Splitting
epoch loop: it keeps rescheduling itself, so drive the simulation with
``run_until_complete``-style helpers (as the runner and API do) rather
than draining the queue, or call :meth:`GaugeSampler.stop` first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..sim.engine import Engine
    from ..sim.stats import StatsCollector


class GaugeSampler:
    """Samples named scalar gauges every ``interval_us`` of simulated time."""

    def __init__(
        self,
        engine: "Engine",
        stats: "StatsCollector",
        interval_us: float = 50.0,
        trace_cat: str = "gauge",
    ):
        if interval_us <= 0:
            raise ValueError("sample interval must be positive")
        self.engine = engine
        self.stats = stats
        self.interval_us = interval_us
        self.trace_cat = trace_cat
        self._gauges: List[Tuple[str, Callable[[], float]]] = []
        self._running = False
        self.samples_taken = 0

    def add(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge; ``fn`` is polled at every sampling tick."""
        self._gauges.append((name, fn))

    def sample_once(self) -> None:
        """Poll every gauge now (also used for a final end-of-run sample)."""
        now = self.engine.now
        tracer = self.engine.tracer
        emit = tracer.enabled
        track = tracer.track("gauges") if emit else 0
        timeline = self.stats.timeline
        for name, fn in self._gauges:
            value = float(fn())
            self.stats.record_point(name, now, value)
            if emit:
                tracer.counter(now, self.trace_cat, name, value, track=track)
            if timeline is not None:
                timeline.gauge(now, name, value)
        self.samples_taken += 1

    def start(self) -> None:
        """Start the background sampling process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.engine.process(self._run(), name="gauge-sampler")

    def stop(self) -> None:
        """Stop after the current tick; the process then drains away."""
        self._running = False

    def _run(self) -> Generator:
        while self._running:
            self.sample_once()
            yield self.interval_us
