"""Per-run reports: latency, breakdowns, hotspots, switch-resource peaks.

A :class:`RunReport` condenses one :class:`~repro.sim.stats.RunResult`
into the views the paper's figures are built from: latency summaries with
p50/p99, the span-derived fault-path breakdown (with a consistency check
that the components sum to the measured end-to-end latency), the top
queueing hotspots by accumulated wait time, and the switch-resource peaks
(directory SRAM, match-action rules, recirculations).

Render as text (``render()``) or machine-readable JSON (``to_json()``);
``python -m repro report`` wraps both behind a CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..sim.stats import LatencySummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.stats import RunResult

#: gauge-key prefixes the telemetry capture uses (see MindCluster).
WAIT_PREFIX = "wait_us:"
UTIL_PREFIX = "utilization:"

#: switch-resource counters surfaced as "peaks" in the report.
_PEAK_COUNTERS = (
    "directory_peak",
    "directory_final",
    "match_action_rules",
    "pipeline_passes",
    "recirculations",
)

#: transaction-engine counters surfaced as their own report section.
_TXN_COUNTERS = (
    "txn_admitted",
    "pending_table_peak",
    "txn_conflict_waits",
    "coalesced_fetches",
    "faults_coalesced",
    "memory_fetches",
    "capacity_evictions",
)


@dataclass
class RunReport:
    """A rendered-friendly digest of one run."""

    meta: Dict[str, Any]
    latencies: Dict[str, LatencySummary]
    fault_breakdown: Dict[str, float]
    #: relative error between the span components' sum and the measured
    #: total end-to-end fault latency (0.0 when they agree exactly).
    fault_breakdown_error: float
    invalidation_breakdown: Dict[str, float]
    hotspots: List[Tuple[str, float]]
    utilizations: List[Tuple[str, float]]
    switch_peaks: Dict[str, int]
    #: pending-transaction-table digest (admissions, coalescing, conflicts);
    #: empty when the run recorded no transaction-engine counters.
    txn_engine: Dict[str, int]
    counters: Dict[str, int]
    timeseries_peaks: Dict[str, float] = field(default_factory=dict)
    #: fault-injection / fail-over digest; empty for fault-free runs.
    availability: Dict[str, Any] = field(default_factory=dict)
    #: windowed telemetry document (see ``repro.telemetry``); empty when
    #: the run did not enable telemetry.
    timeline: Dict[str, Any] = field(default_factory=dict)
    #: SLO evaluation over the timeline; empty without telemetry.
    slo: Dict[str, Any] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_result(cls, result: "RunResult") -> "RunReport":
        stats = result.stats
        # One snapshot: every category is sorted/summarized once and the
        # cached summaries are shared with later readers (sweep metrics).
        latencies = stats.snapshot()
        fault_breakdown = stats.breakdown("fault_path")
        total_fault_us = float(sum(stats.latencies.get("fault", ())))
        span_sum = sum(fault_breakdown.values())
        if total_fault_us > 0:
            error = abs(span_sum - total_fault_us) / total_fault_us
        else:
            error = 0.0 if span_sum == 0 else 1.0
        hotspots = sorted(
            (
                (name[len(WAIT_PREFIX):], value)
                for name, value in stats.gauges.items()
                if name.startswith(WAIT_PREFIX)
            ),
            key=lambda kv: (-kv[1], kv[0]),
        )
        utilizations = sorted(
            (
                (name[len(UTIL_PREFIX):], value)
                for name, value in stats.gauges.items()
                if name.startswith(UTIL_PREFIX)
            ),
            key=lambda kv: (-kv[1], kv[0]),
        )
        peaks = {
            name: stats.counter(name)
            for name in _PEAK_COUNTERS
            if name in stats.counters
        }
        txn_engine = {
            name: stats.counter(name)
            for name in _TXN_COUNTERS
            if name in stats.counters
        }
        series_peaks = {
            name: max(v for _t, v in points)
            for name, points in sorted(stats.timeseries.items())
            if points
        }
        availability = cls._availability_section(stats)
        timeline_doc: Dict[str, Any] = {}
        slo_doc: Dict[str, Any] = {}
        if stats.timeline is not None:
            from ..telemetry import evaluate_slos

            timeline_doc = stats.timeline.to_json()
            slo_doc = evaluate_slos(stats.timeline).to_json()
        return cls(
            meta={
                "system": result.system,
                "workload": result.workload,
                "num_blades": result.num_blades,
                "num_threads": result.num_threads,
                "runtime_us": result.runtime_us,
                "total_accesses": result.total_accesses,
                "throughput_iops": result.throughput_iops,
            },
            latencies=latencies,
            fault_breakdown=fault_breakdown,
            fault_breakdown_error=error,
            invalidation_breakdown=stats.breakdown("invalidation"),
            hotspots=hotspots,
            utilizations=utilizations,
            switch_peaks=peaks,
            txn_engine=txn_engine,
            counters=dict(sorted(stats.counters.items())),
            timeseries_peaks=series_peaks,
            availability=availability,
            timeline=timeline_doc,
            slo=slo_doc,
        )

    #: counters whose presence marks a run as fault-injected.
    _FAULT_MARKERS = (
        "switch_crashes",
        "link_packets_dropped",
        "blade_outages",
        "blade_slowdowns",
        "blade_requests_refused",
        "control_cpu_stalls",
    )

    @classmethod
    def _availability_section(cls, stats) -> Dict[str, Any]:
        """Digest the fault/fail-over telemetry, if the run had any.

        Captures the quantities the robustness experiments assert on: the
        total unavailability window, retry/timeout volume, the re-fault
        storm depth (faults served while the rebuilt directory re-warms),
        and the degraded-vs-steady-state p99 comparison.
        """
        fault_injected = any(m in stats.counters for m in cls._FAULT_MARKERS)
        if not fault_injected and "unavailability_us" not in stats.gauges:
            return {}
        section: Dict[str, Any] = {}
        for name in (
            "switch_crashes",
            "failovers_completed",
            "failover_rules_installed",
            "link_packets_dropped",
            "link_bytes_dropped",
            "retransmissions",
            "link_retransmissions",
            "resets",
            "stale_transactions",
            "faults_reissued",
            "blade_timeouts",
            "blade_requests_refused",
            "blade_outages",
            "blade_slowdowns",
            "control_cpu_stalls",
        ):
            if name in stats.counters:
                section[name] = stats.counter(name)
        if "unavailability_us" in stats.gauges:
            section["unavailability_us"] = stats.gauges["unavailability_us"]
        outages = stats.latencies.get("outage_window")
        if outages:
            section["outage_windows"] = [float(v) for v in outages]
        # Re-fault storm depth: faults absorbed while service was degraded
        # (gate wait + directory re-warm), i.e. the recovery backlog.
        degraded = stats.latencies.get("fault:phase:degraded")
        if degraded:
            section["refault_storm_depth"] = len(degraded)
        phases = {}
        for phase in ("pre", "degraded", "post"):
            cat = f"fault:phase:{phase}"
            if stats.latencies.get(cat):
                phases[phase] = stats.latency_summary(cat)
        if phases:
            section["phase_p99_us"] = {p: s.p99 for p, s in phases.items()}
            section["phase_counts"] = {p: s.count for p, s in phases.items()}
            pre = phases.get("pre")
            post = phases.get("post")
            if pre and post and pre.p99 > 0:
                # Recovery check: post-fail-over steady-state tail vs the
                # pre-fault baseline (acceptance: within 10%).
                section["post_vs_pre_p99"] = post.p99 / pre.p99
        return section

    # -- export ----------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "latencies": {
                cat: {
                    "count": s.count,
                    "mean": s.mean,
                    "p50": s.p50,
                    "p99": s.p99,
                    "p999": s.p999,
                    "max": s.max,
                }
                for cat, s in self.latencies.items()
            },
            "fault_breakdown": self.fault_breakdown,
            "fault_breakdown_error": self.fault_breakdown_error,
            "invalidation_breakdown": self.invalidation_breakdown,
            "hotspots": [{"name": n, "wait_us": w} for n, w in self.hotspots],
            "utilizations": [
                {"name": n, "utilization": u} for n, u in self.utilizations
            ],
            "switch_peaks": self.switch_peaks,
            "txn_engine": self.txn_engine,
            "counters": self.counters,
            "timeseries_peaks": self.timeseries_peaks,
            "availability": self.availability,
            "timeline": self.timeline,
            "slo": self.slo,
        }

    def render(self, top: int = 8) -> str:
        m = self.meta
        lines: List[str] = []
        lines.append(
            f"run report: {m['system']} / {m['workload']} -- "
            f"{m['num_blades']} blades, {m['num_threads']} threads"
        )
        lines.append(
            f"  runtime {m['runtime_us']:.1f} us, "
            f"{m['total_accesses']} accesses, "
            f"{m['throughput_iops'] / 1e6:.2f} M IOPS"
        )
        if self.latencies:
            lines.append("")
            lines.append("latency (us):")
            lines.append(
                f"  {'category':<24s}{'count':>8s}{'mean':>9s}"
                f"{'p50':>9s}{'p99':>9s}{'p99.9':>9s}{'max':>9s}"
            )
            lines.extend(
                f"  {cat:<24s}{s.count:>8d}{s.mean:>9.2f}"
                f"{s.p50:>9.2f}{s.p99:>9.2f}{s.p999:>9.2f}{s.max:>9.2f}"
                for cat, s in self.latencies.items()
            )
        if self.fault_breakdown:
            total = sum(self.fault_breakdown.values())
            lines.append("")
            lines.append(
                "fault-path breakdown (span components; "
                f"sum vs end-to-end: {self.fault_breakdown_error * 100:.2f}% off):"
            )
            for comp, us in sorted(
                self.fault_breakdown.items(), key=lambda kv: -kv[1]
            ):
                share = 100.0 * us / total if total else 0.0
                lines.append(f"  {comp:<24s}{us:>12.1f} us  {share:>5.1f}%")
        if self.invalidation_breakdown:
            lines.append("")
            lines.append("invalidation handling (total us across blades):")
            lines.extend(
                f"  {comp:<24s}{us:>12.1f} us"
                for comp, us in sorted(
                    self.invalidation_breakdown.items(), key=lambda kv: -kv[1]
                )
            )
        if self.hotspots:
            lines.append("")
            lines.append(f"top queueing hotspots (accumulated wait, top {top}):")
            for name, wait in self.hotspots[:top]:
                util = dict(self.utilizations).get(name)
                util_str = f"  util {util * 100:.1f}%" if util is not None else ""
                lines.append(f"  {name:<28s}{wait:>12.1f} us{util_str}")
        if self.switch_peaks:
            lines.append("")
            lines.append("switch resources:")
            lines.extend(
                f"  {name:<28s}{value:>12d}"
                for name, value in self.switch_peaks.items()
            )
        if self.txn_engine:
            lines.append("")
            lines.append("transaction engine (pending-table activity):")
            lines.extend(
                f"  {name:<28s}{self.txn_engine[name]:>12d}"
                for name in _TXN_COUNTERS
                if name in self.txn_engine
            )
        if self.timeseries_peaks:
            lines.append("")
            lines.append("sampled series peaks:")
            lines.extend(
                f"  {name:<28s}{value:>12.1f}"
                for name, value in self.timeseries_peaks.items()
            )
        if self.availability:
            a = self.availability
            lines.append("")
            lines.append("availability (fault injection / fail-over):")
            if "unavailability_us" in a:
                lines.append(
                    f"  {'unavailability':<28s}{a['unavailability_us']:>12.1f} us"
                    f"  ({a.get('switch_crashes', 0)} crash(es), "
                    f"{a.get('failovers_completed', 0)} fail-over(s))"
                )
            for name in (
                "retransmissions",
                "link_retransmissions",
                "link_packets_dropped",
                "resets",
                "stale_transactions",
                "faults_reissued",
                "blade_timeouts",
                "blade_outages",
                "blade_slowdowns",
                "control_cpu_stalls",
            ):
                if name in a:
                    lines.append(f"  {name:<28s}{a[name]:>12d}")
            if "refault_storm_depth" in a:
                lines.append(
                    f"  {'refault_storm_depth':<28s}{a['refault_storm_depth']:>12d}"
                )
            if "phase_p99_us" in a:
                phase_bits = "  ".join(
                    f"{p}={v:.2f}us" for p, v in a["phase_p99_us"].items()
                )
                lines.append(f"  p99 by phase: {phase_bits}")
            if "post_vs_pre_p99" in a:
                lines.append(
                    f"  post/pre p99 ratio: {a['post_vs_pre_p99']:.3f}"
                )
        lines.extend(self.render_timeline())
        lines.extend(self.render_slo())
        return "\n".join(lines)

    #: windows rendered before eliding the middle of a long timeline.
    _TIMELINE_ROWS = 40

    def render_timeline(self) -> List[str]:
        """The windowed-telemetry section (empty without telemetry)."""
        if not self.timeline:
            return []
        windows = self.timeline.get("windows", [])
        lines: List[str] = [""]
        lines.append(
            f"timeline ({self.timeline['window_us']:g} us windows, "
            f"{self.timeline['num_windows']} total):"
        )
        # Lead with the category an SLO would watch: open-loop end-to-end
        # latency when measured, the coherence fault path otherwise.
        categories = {
            cat for w in windows for cat in w.get("latencies", {})
        }
        primary = (
            "openloop:latency" if "openloop:latency" in categories
            else "fault" if "fault" in categories
            else (sorted(categories)[0] if categories else None)
        )
        if primary is not None:
            lines.append(f"  category: {primary}")
            lines.append(
                f"  {'window':>7s}{'t_start':>10s}  {'phase':<9s}"
                f"{'count':>7s}{'p50':>9s}{'p99':>9s}{'p99.9':>9s}{'max':>9s}"
            )
            rows = windows
            elided = 0
            if len(rows) > self._TIMELINE_ROWS:
                head = self._TIMELINE_ROWS // 2
                elided = len(rows) - 2 * head
                rows = list(rows[:head]) + list(rows[-head:])
            half = self._TIMELINE_ROWS // 2
            for i, w in enumerate(rows):
                if elided and i == half:
                    lines.append(f"  ... {elided} windows elided ...")
                stats = w.get("latencies", {}).get(primary)
                phase = w.get("phase", "-")
                if stats is None:
                    lines.append(
                        f"  {w['window']:>7d}{w['t_start']:>10.0f}  "
                        f"{phase:<9s}{0:>7d}{'-':>9s}{'-':>9s}{'-':>9s}{'-':>9s}"
                    )
                else:
                    lines.append(
                        f"  {w['window']:>7d}{w['t_start']:>10.0f}  "
                        f"{phase:<9s}{int(stats['count']):>7d}"
                        f"{stats['p50']:>9.2f}{stats['p99']:>9.2f}"
                        f"{stats['p999']:>9.2f}{stats['max']:>9.2f}"
                    )
        marks = self.timeline.get("marks", [])
        if marks:
            lines.append("  marks: " + ", ".join(
                f"{label}@{t:.0f}us" for t, label in marks
            ))
        return lines

    def render_slo(self) -> List[str]:
        """The SLO burn-rate section (empty without telemetry)."""
        if not self.slo or not self.slo.get("objectives"):
            return []
        lines: List[str] = [""]
        verdict = "met" if self.slo.get("met") else "MISSED"
        lines.append(f"slo objectives ({verdict}):")
        for obj in self.slo["objectives"]:
            status = "met" if obj["met"] else "MISSED"
            lines.append(
                f"  {obj['name']:<16s} {status:<7s}"
                f"compliance {obj['compliance']:7.2%}  "
                f"burn {obj['burn_rate']:6.2f}x  "
                f"({obj['windows_violating']}/{obj['windows_evaluated']} "
                f"windows over {obj['threshold_us']:g} us)"
            )
            by_phase = obj.get("violations_by_phase")
            if by_phase:
                phase_bits = ", ".join(
                    f"{p}={n}" for p, n in sorted(by_phase.items())
                )
                lines.append(f"    violations by phase: {phase_bits}")
        return lines
