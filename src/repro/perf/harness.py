"""Point-by-point wall-clock profiling of sweep specs.

The harness re-runs each sweep point in this process (same code path as
``repro.sweep.engine.execute_point``) wrapped in ``perf_counter`` timing,
and pulls :meth:`repro.sim.engine.Engine.kernel_stats` off every
:class:`~repro.sim.stats.RunResult`.  Repetitions time the *whole spec*
and the best (minimum-wall) repetition is reported, which filters most
scheduler noise without needing long runs.

Determinism guard: simulated metrics are extracted from every repetition
and must be identical across repetitions -- a cheap tripwire that the
kernel fast paths being measured did not change simulation results.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..faults import FaultPlan
from ..runner import run_system
from ..sim.stats import RunResult
from ..sweep.engine import extract_metrics, reseed_plan_for_point
from ..sweep.spec import SweepPoint, SweepSpec, build_workload_cached

#: schema tag for profile documents (BENCH_speed.json is one of these).
SCHEMA = "repro.profile/v1"

#: module-path buckets for per-subsystem time attribution.  Ordered:
#: the first matching bucket wins, so blades/compute (replay) is claimed
#: before the catch-all protocol paths could see it.
SUBSYSTEM_PATHS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("scheduler", ("repro/sim/engine.py",)),
    ("replay", ("repro/workloads/", "repro/blades/")),
    (
        "protocol",
        ("repro/core/", "repro/switchsim/", "repro/sim/network.py"),
    ),
)


def subsystem_attribution(stats: pstats.Stats) -> Dict[str, float]:
    """Fractions of cProfile internal time per kernel subsystem.

    ``tottime`` (time inside a frame, excluding callees) sums cleanly
    across the whole profile, so bucketing it by module path answers
    "where does the wall clock actually go" without double counting:
    scheduler (the event loop itself), replay (workload drive + blade
    cache), protocol (coherence, switch, links) and other (numpy, stdlib,
    everything else).
    """
    buckets = {name: 0.0 for name, _ in SUBSYSTEM_PATHS}
    buckets["other"] = 0.0
    total = 0.0
    for (filename, _lineno, _func), entry in stats.stats.items():  # type: ignore[attr-defined]
        tottime = entry[2]
        total += tottime
        path = filename.replace(os.sep, "/")
        for name, needles in SUBSYSTEM_PATHS:
            if any(needle in path for needle in needles):
                buckets[name] += tottime
                break
        else:
            buckets["other"] += tottime
    if total <= 0.0:
        return {name: 0.0 for name in buckets}
    return {name: spent / total for name, spent in buckets.items()}


@dataclass
class PointProfile:
    """One sweep point's wall time and kernel counters (best repetition)."""

    point_id: str
    cell_id: str
    wall_seconds: float
    total_accesses: int
    kernel_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def events_executed(self) -> int:
        return int(self.kernel_stats.get("events_executed", 0))

    def to_json(self) -> Dict[str, Any]:
        return {
            "point_id": self.point_id,
            "cell_id": self.cell_id,
            "wall_seconds": self.wall_seconds,
            "total_accesses": self.total_accesses,
            "kernel_stats": {k: self.kernel_stats[k] for k in sorted(self.kernel_stats)},
        }


@dataclass
class ProfileReport:
    """A full profiling run: spec identity, wall times, derived rates."""

    spec: SweepSpec
    reps: int
    wall_seconds_per_rep: List[float]
    points: List[PointProfile]
    cprofile_text: Optional[str] = None
    #: tottime fraction per subsystem (scheduler/replay/protocol/other)
    #: from an untimed cProfile pass; None when attribution was not run.
    subsystems: Optional[Dict[str, float]] = None
    #: cProfile top-N cumulative table for the worst (slowest) point.
    hotspot_text: Optional[str] = None
    hotspot_point: Optional[str] = None

    @property
    def best_wall_seconds(self) -> float:
        return min(self.wall_seconds_per_rep)

    @property
    def events_executed(self) -> int:
        return sum(p.events_executed for p in self.points)

    @property
    def total_accesses(self) -> int:
        return sum(p.total_accesses for p in self.points)

    @property
    def events_per_second(self) -> float:
        best = self.best_wall_seconds
        return self.events_executed / best if best > 0 else 0.0

    @property
    def accesses_per_second(self) -> float:
        best = self.best_wall_seconds
        return self.total_accesses / best if best > 0 else 0.0

    def kernel_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for point in self.points:
            for name, value in point.kernel_stats.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def to_doc(self) -> Dict[str, Any]:
        doc = {
            "schema": SCHEMA,
            "spec_digest": self.spec.digest(),
            "num_points": len(self.points),
            "reps": self.reps,
            "wall_seconds_per_rep": self.wall_seconds_per_rep,
            "best_wall_seconds": self.best_wall_seconds,
            "events_executed": self.events_executed,
            "events_per_second": self.events_per_second,
            "total_accesses": self.total_accesses,
            "accesses_per_second": self.accesses_per_second,
            "kernel_totals": self.kernel_totals(),
            "points": [p.to_json() for p in self.points],
        }
        if self.subsystems is not None:
            doc["subsystems"] = {
                name: self.subsystems[name] for name in sorted(self.subsystems)
            }
        return doc


def _run_point(
    point: SweepPoint, fault_plan: Optional[FaultPlan]
) -> RunResult:
    """Execute one point exactly as the sweep engine would."""
    workload = build_workload_cached(point)
    extra: Dict[str, Any] = {}
    if fault_plan is not None:
        extra["fault_plan"] = reseed_plan_for_point(fault_plan, point)
    config = point.runner_config(**extra)
    return run_system(point.system, workload, point.num_blades, config)


def run_profile(
    spec: SweepSpec,
    reps: int = 3,
    fault_plan: Optional[FaultPlan] = None,
    cprofile_top: int = 0,
    subsystems: bool = False,
    hotspots_top: int = 0,
) -> ProfileReport:
    """Profile every point of ``spec``; report the best of ``reps`` passes.

    Raises :class:`RuntimeError` if any simulated metric differs between
    repetitions (the kernel fast paths must not change simulation
    results, and repeated runs of a point are pure functions of it).
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    points = spec.points()
    # Warm the per-process workload cache outside the timed region so the
    # first repetition is not charged for trace synthesis.
    for point in points:
        build_workload_cached(point)

    wall_per_rep: List[float] = []
    best_points: List[PointProfile] = []
    reference_metrics: Optional[List[Dict[str, float]]] = None
    for _ in range(reps):
        rep_points: List[PointProfile] = []
        rep_metrics: List[Dict[str, float]] = []
        rep_wall = 0.0
        for point in points:
            t0 = perf_counter()
            result = _run_point(point, fault_plan)
            wall = perf_counter() - t0
            rep_wall += wall
            rep_metrics.append(extract_metrics(result))
            rep_points.append(
                PointProfile(
                    point_id=point.point_id,
                    cell_id=point.cell_id,
                    wall_seconds=wall,
                    total_accesses=result.total_accesses,
                    kernel_stats=dict(result.kernel_stats),
                )
            )
        if reference_metrics is None:
            reference_metrics = rep_metrics
        elif rep_metrics != reference_metrics:
            raise RuntimeError(
                "simulated metrics changed between profiling repetitions; "
                "the kernel is non-deterministic"
            )
        if not wall_per_rep or rep_wall < min(wall_per_rep):
            best_points = rep_points
        wall_per_rep.append(rep_wall)

    cprofile_text = None
    subsystem_fracs = None
    if cprofile_top > 0 or subsystems:
        # One untimed instrumented pass serves both the text table and
        # the per-subsystem attribution (instrumentation overhead skews
        # absolute times, not the relative split).
        profiler = cProfile.Profile()
        profiler.enable()
        for point in points:
            _run_point(point, fault_plan)
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        if cprofile_top > 0:
            stats.sort_stats("tottime").print_stats(cprofile_top)
            cprofile_text = buf.getvalue()
        subsystem_fracs = subsystem_attribution(stats)

    hotspot_text = None
    hotspot_point = None
    if hotspots_top > 0:
        worst = max(best_points, key=lambda p: p.wall_seconds)
        worst_point = next(
            p for p in points if p.point_id == worst.point_id
        )
        profiler = cProfile.Profile()
        profiler.enable()
        _run_point(worst_point, fault_plan)
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(hotspots_top)
        hotspot_text = buf.getvalue()
        hotspot_point = worst_point.label()

    return ProfileReport(
        spec=spec,
        reps=reps,
        wall_seconds_per_rep=wall_per_rep,
        points=best_points,
        cprofile_text=cprofile_text,
        subsystems=subsystem_fracs,
        hotspot_text=hotspot_text,
        hotspot_point=hotspot_point,
    )


def compare_wall_seconds(
    current: Dict[str, Any], baseline: Dict[str, Any], warn_frac: float = 0.25
) -> Optional[str]:
    """Warning text if ``current`` is more than ``warn_frac`` slower.

    Wall clocks differ across machines, so this is advisory (CI prints
    the warning but does not fail); ``None`` means within budget.  Specs
    must match -- comparing different workloads is meaningless.
    """
    if current.get("spec_digest") != baseline.get("spec_digest"):
        return (
            "speed baseline covers a different spec "
            f"({baseline.get('spec_digest')!r} != {current.get('spec_digest')!r}); "
            "regenerate it with: python -m repro profile --preset ci-quick "
            "--json-out benchmarks/BENCH_speed.json"
        )
    base = float(baseline.get("best_wall_seconds", 0.0))
    cur = float(current.get("best_wall_seconds", 0.0))
    if base <= 0.0:
        return None
    if cur > base * (1.0 + warn_frac):
        return (
            f"kernel speed regression: ci-quick wall clock {cur:.3f}s is "
            f"{cur / base:.2f}x the checked-in baseline {base:.3f}s "
            f"(warn threshold {1.0 + warn_frac:.2f}x)"
        )
    return None
