"""Self-profiling harness for the simulation kernel.

``python -m repro profile`` times a sweep preset/grid point-by-point in
process, reads the engine's scheduler counters (events executed,
fast-path hits) from each run, and emits a ``repro.profile/v1`` JSON
document -- the checked-in speed baseline ``benchmarks/BENCH_speed.json``
is one of these.  Wall-clock data lives *only* here: sweep documents
(schema ``repro.sweep/v1``) stay wall-clock-free so they diff clean
across machines, and the per-point profiles in this document are the
"side file" for kernel telemetry that must never enter sweep metrics.
"""

from .harness import (
    SCHEMA,
    PointProfile,
    ProfileReport,
    compare_wall_seconds,
    run_profile,
)

__all__ = [
    "SCHEMA",
    "PointProfile",
    "ProfileReport",
    "compare_wall_seconds",
    "run_profile",
]
