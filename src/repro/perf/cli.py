"""``python -m repro profile``: time the kernel, not the simulation.

Examples::

    # the CI speed check: best-of-3 wall clock for the quick preset
    python -m repro profile --preset ci-quick --seeds 1,2 \\
        --json-out benchmarks/BENCH_speed.json

    # where does the time go?  cProfile top-25 by internal time
    python -m repro profile --preset ci-quick --seeds 1,2 --cprofile 25

    # advisory regression check against the checked-in baseline
    python -m repro profile --preset ci-quick --seeds 1,2 \\
        --compare-to benchmarks/BENCH_speed.json

Wall clocks are machine-specific, so ``--compare-to`` only *warns* on a
slowdown by default (exit status stays 0).  CI opts into a hard gate
with ``--fail-frac``: past that slowdown fraction the command prints an
error and exits 1.  The byte-exact simulation gate is ``python -m repro
sweep --compare-to``, which this command never touches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from ..sweep.presets import PRESETS, preset_grids
from ..sweep.spec import GridSpec, SweepSpec, parse_grid
from .harness import compare_wall_seconds, run_profile


def _parse_seeds(text: str) -> List[int]:
    try:
        seeds = [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise SystemExit(f"bad --seeds {text!r}: expected comma-separated ints")
    if not seeds:
        raise SystemExit(f"bad --seeds {text!r}: no seeds")
    return seeds


def add_profile_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "profile",
        help="wall-clock profile of the simulation kernel on a sweep spec",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="AXES",
        help="grid in 'axis=v1,v2;axis2=...' syntax (repeatable)",
    )
    parser.add_argument(
        "--preset",
        action="append",
        default=[],
        metavar="NAME",
        help=f"named grid from {sorted(PRESETS)} (repeatable)",
    )
    parser.add_argument(
        "--seeds",
        default="1",
        metavar="S1,S2,...",
        help="seed list crossed with every grid (default: 1)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        metavar="N",
        help="timed repetitions; the best (min wall) is reported (default 3)",
    )
    parser.add_argument(
        "--cprofile",
        type=int,
        default=0,
        metavar="TOP",
        help="also run one pass under cProfile and print the top TOP entries",
    )
    parser.add_argument(
        "--hotspots",
        type=int,
        nargs="?",
        const=15,
        default=0,
        metavar="TOP",
        help="re-run the worst (slowest) point under cProfile and print "
        "the top TOP entries by cumulative time (default 15)",
    )
    parser.add_argument(
        "--subsystems",
        action="store_true",
        help="attribute profile time to scheduler/replay/protocol buckets "
        "(implied by --json-out and --cprofile)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the repro.profile/v1 document here",
    )
    parser.add_argument(
        "--compare-to",
        metavar="BASELINE",
        help="checked-in speed baseline; warn (never fail) on a slowdown",
    )
    parser.add_argument(
        "--warn-frac",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="slowdown fraction that triggers the warning (default 0.25)",
    )
    parser.add_argument(
        "--fail-frac",
        type=float,
        default=None,
        metavar="FRAC",
        help="slowdown fraction that fails the run (exit 1); "
        "overrides --warn-frac when given",
    )
    parser.set_defaults(fn=main)


def main(args: argparse.Namespace) -> int:
    grids: List[GridSpec] = []
    for name in args.preset:
        grids.extend(preset_grids(name))
    grids.extend(parse_grid(text) for text in args.grid)
    if not grids:
        raise SystemExit("nothing to profile: pass --grid and/or --preset")
    spec = SweepSpec(grids, _parse_seeds(args.seeds))
    report = run_profile(
        spec,
        reps=args.reps,
        cprofile_top=args.cprofile,
        subsystems=args.subsystems or bool(args.json_out),
        hotspots_top=args.hotspots,
    )
    doc = report.to_doc()

    walls = ", ".join(f"{w:.3f}s" for w in report.wall_seconds_per_rep)
    print(f"profiled {len(report.points)} points x {report.reps} reps: {walls}")
    print(
        f"best {report.best_wall_seconds:.3f}s | "
        f"{report.events_per_second:,.0f} engine events/s | "
        f"{report.accesses_per_second:,.0f} accesses/s"
    )
    totals = report.kernel_totals()
    print(
        "kernel: "
        + ", ".join(f"{name}={totals[name]:,}" for name in sorted(totals))
    )
    if report.subsystems is not None:
        print(
            "subsystems: "
            + ", ".join(
                f"{name}={report.subsystems[name]:.1%}"
                for name in ("scheduler", "replay", "protocol", "other")
            )
        )
    if report.cprofile_text:
        print(report.cprofile_text)
    if report.hotspot_text:
        print(f"hotspots: worst point {report.hotspot_point} "
              f"(top {args.hotspots} by cumulative time)")
        print(report.hotspot_text)

    if args.json_out:
        tmp = f"{args.json_out}.tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, args.json_out)
        print(f"wrote {args.json_out}")

    if args.compare_to:
        frac = args.fail_frac if args.fail_frac is not None else args.warn_frac
        try:
            with open(args.compare_to) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: cannot read {args.compare_to}: {exc}", file=sys.stderr)
            return 0
        message = compare_wall_seconds(doc, baseline, warn_frac=frac)
        if message:
            if args.fail_frac is not None:
                print(f"error: {message}", file=sys.stderr)
                return 1
            print(f"warning: {message}", file=sys.stderr)
        else:
            base = float(baseline.get("best_wall_seconds", 0.0))
            print(
                f"speed vs baseline: {report.best_wall_seconds:.3f}s "
                f"vs {base:.3f}s (within budget)"
            )
    return 0
