"""Deterministic fault injection and switch fail-over (Section 4.4).

- :mod:`repro.faults.plan` -- declarative, seeded fault schedules.
- :mod:`repro.faults.injector` -- arms a plan on a running cluster.
- :mod:`repro.faults.failover` -- the in-simulation switch fail-over
  sequence (detection, rebuild-from-replica, quiesce, re-warm).
- :mod:`repro.faults.message_loss` -- protocol-level message drops
  (formerly ``repro.core.coherence.MessageLossInjector``).
"""

from .failover import FailoverConfig, FailoverOrchestrator
from .injector import FaultInjector
from .message_loss import MessageLossInjector
from .plan import (
    BladeOutage,
    BladeSlowdown,
    ControlCpuStall,
    FaultEventError,
    FaultOverlapError,
    FaultPlan,
    FaultPlanError,
    LinkLossWindow,
    SwitchCrash,
)

__all__ = [
    "BladeOutage",
    "BladeSlowdown",
    "ControlCpuStall",
    "FailoverConfig",
    "FailoverOrchestrator",
    "FaultEventError",
    "FaultInjector",
    "FaultOverlapError",
    "FaultPlan",
    "FaultPlanError",
    "LinkLossWindow",
    "MessageLossInjector",
    "SwitchCrash",
]
