"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector is itself a collection of simulation processes: link fault
windows are armed up front (the links gate per-packet behaviour on the sim
clock), while timed events -- blade slowdowns/outages, control-CPU stalls,
and the switch crash -- each get a small scheduler process.  Determinism:
every lossy link window receives its own child generator derived from the
plan seed and a stable stream index, so event interleaving never perturbs
the drop sequence of an unrelated link.
"""

from __future__ import annotations

from typing import Generator

from ..sim.network import LinkFault
from ..sim.rng import derive_rng, make_rng
from .plan import (
    BladeOutage,
    BladeSlowdown,
    ControlCpuStall,
    FaultPlan,
    LinkLossWindow,
    SwitchCrash,
)


class FaultInjector:
    """Arms a fault plan on a :class:`~repro.cluster.MindCluster`."""

    def __init__(self, cluster, plan: FaultPlan):
        plan.validate()
        self.cluster = cluster
        self.plan = plan
        self.engine = cluster.engine
        self._root_rng = make_rng(plan.seed)
        self._started = False
        #: number of fault events armed/scheduled (for reporting).
        self.events_armed = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm every event in the plan.  Idempotent."""
        if self._started:
            return
        self._started = True
        stream = 0
        for ev in self.plan.events:
            stream += 1
            if isinstance(ev, LinkLossWindow):
                self._arm_link_window(ev, stream)
            elif isinstance(ev, BladeSlowdown):
                self.engine.process(
                    self._run_blade_slow(ev), name=f"fault-slow-mem{ev.blade_id}"
                )
            elif isinstance(ev, BladeOutage):
                self.engine.process(
                    self._run_blade_outage(ev), name=f"fault-crash-mem{ev.blade_id}"
                )
            elif isinstance(ev, ControlCpuStall):
                self.engine.process(self._run_cpu_stall(ev), name="fault-cpu-stall")
            elif isinstance(ev, SwitchCrash):
                failover = self.cluster.enable_failover()
                failover.crash_at(ev.at_us)
            self.events_armed += 1

    # -- link windows ------------------------------------------------------

    def _arm_link_window(self, ev: LinkLossWindow, stream: int) -> None:
        links = self.cluster.network.links(
            port_name=ev.port, direction=ev.direction
        )
        for idx, link in enumerate(links):
            # One independent child stream per (event, link): the drop
            # sequence on a link depends only on plan seed and its own
            # traffic, never on other links' interleaving.
            rng = (
                derive_rng(make_rng(self.plan.seed), stream * 1_000 + idx)
                if ev.drop_prob
                else None
            )
            link.install_fault(
                LinkFault(
                    start_us=ev.start_us,
                    end_us=ev.end_us,
                    drop_prob=ev.drop_prob,
                    extra_delay_us=ev.extra_delay_us,
                    rng=rng,
                )
            )

    # -- timed processes ---------------------------------------------------

    def _mark(self, label: str) -> None:
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                self.engine.now, "fault", label, track=tracer.track("faults")
            )
        timeline = self.cluster.stats.timeline
        if timeline is not None:
            # The same markers annotate the windowed timeline, so reports
            # can join injector events to the windows they landed in.
            timeline.mark(self.engine.now, label)

    def _run_blade_slow(self, ev: BladeSlowdown) -> Generator:
        blade = self.cluster.memory_blades[ev.blade_id]
        if ev.start_us > self.engine.now:
            yield ev.start_us - self.engine.now
        blade.slow_factor = ev.factor
        self._mark(f"blade_slow:mem{ev.blade_id}:x{ev.factor:g}")
        self.cluster.stats.incr("blade_slowdowns")
        if ev.end_us > self.engine.now:
            yield ev.end_us - self.engine.now
        blade.slow_factor = 1.0
        self._mark(f"blade_slow_end:mem{ev.blade_id}")

    def _run_blade_outage(self, ev: BladeOutage) -> Generator:
        blade = self.cluster.memory_blades[ev.blade_id]
        if ev.start_us > self.engine.now:
            yield ev.start_us - self.engine.now
        blade.pause()
        self._mark(f"blade_pause:mem{ev.blade_id}")
        self.cluster.stats.incr("blade_outages")
        if ev.end_us > self.engine.now:
            yield ev.end_us - self.engine.now
        blade.resume()
        self._mark(f"blade_resume:mem{ev.blade_id}")

    def _run_cpu_stall(self, ev: ControlCpuStall) -> Generator:
        cpu = self.cluster.mmu.control_cpu
        if ev.at_us > self.engine.now:
            yield ev.at_us - self.engine.now
        self._mark(f"cpu_stall:{ev.duration_us:g}us")
        yield self.engine.process(cpu.stall(ev.duration_us))
        self._mark("cpu_stall_end")
