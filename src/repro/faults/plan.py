"""Deterministic fault plans: *what* goes wrong, *when*.

A :class:`FaultPlan` is a declarative schedule of fault events against a
running cluster -- switch crashes, per-link loss/delay windows, memory-blade
slowdowns and outages, control-CPU stalls.  Plans are plain data: building
one touches no simulator state, so the same plan can be validated, printed,
or replayed against many clusters.  All randomness (per-packet drop rolls)
derives from the plan's single ``seed``, so two runs of the same plan on the
same workload produce byte-identical traces.

Scope note (paper Section 4.4): MIND's fail-over story covers *switch*
failures -- compute/memory blade fault-tolerance is deferred to prior work.
Blade faults here are therefore transient (slow/paused intervals recovered
by retransmission), never permanent data loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

#: link directions a loss/delay window may cover.
DIRECTIONS = ("to_switch", "from_switch", "both")


@dataclass(frozen=True)
class SwitchCrash:
    """Primary-switch failure at ``at_us``; triggers the fail-over path."""

    at_us: float


@dataclass(frozen=True)
class LinkLossWindow:
    """Packet loss and/or delay inflation on links during a time window.

    ``port`` selects one attached endpoint's links by name (``compute0``,
    ``mem1``); None means every link in the network.  ``direction``
    restricts to the uplink or downlink half.
    """

    start_us: float
    end_us: float
    drop_prob: float = 0.0
    extra_delay_us: float = 0.0
    port: Optional[str] = None
    direction: str = "both"


@dataclass(frozen=True)
class BladeSlowdown:
    """Memory blade serves NIC/DRAM requests ``factor``x slower."""

    blade_id: int
    start_us: float
    end_us: float
    factor: float = 4.0


@dataclass(frozen=True)
class BladeOutage:
    """Memory blade answers nothing during the window; the switch's
    timeout/retry machinery rides it out."""

    blade_id: int
    start_us: float
    end_us: float


@dataclass(frozen=True)
class ControlCpuStall:
    """The switch control CPU wedges for ``duration_us`` starting at
    ``at_us``: queued rule updates and syscalls wait it out."""

    at_us: float
    duration_us: float


FaultEvent = Union[
    SwitchCrash, LinkLossWindow, BladeSlowdown, BladeOutage, ControlCpuStall
]


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of fault events.

    Builder methods chain::

        plan = (
            FaultPlan(seed=7)
            .switch_crash(at_us=5_000)
            .packet_loss(2_000, 8_000, prob=0.01)
            .blade_slow(0, 3_000, 6_000, factor=4.0)
        )
    """

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    # -- builders ----------------------------------------------------------

    def switch_crash(self, at_us: float) -> "FaultPlan":
        self.events.append(SwitchCrash(float(at_us)))
        return self

    def packet_loss(
        self,
        start_us: float,
        end_us: float,
        prob: float,
        port: Optional[str] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        self.events.append(
            LinkLossWindow(
                float(start_us), float(end_us), drop_prob=float(prob),
                port=port, direction=direction,
            )
        )
        return self

    def delay_spike(
        self,
        start_us: float,
        end_us: float,
        extra_delay_us: float,
        port: Optional[str] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        self.events.append(
            LinkLossWindow(
                float(start_us), float(end_us),
                extra_delay_us=float(extra_delay_us),
                port=port, direction=direction,
            )
        )
        return self

    def blade_slow(
        self, blade_id: int, start_us: float, end_us: float, factor: float = 4.0
    ) -> "FaultPlan":
        self.events.append(
            BladeSlowdown(int(blade_id), float(start_us), float(end_us), float(factor))
        )
        return self

    def blade_crash(
        self, blade_id: int, start_us: float, end_us: float
    ) -> "FaultPlan":
        self.events.append(BladeOutage(int(blade_id), float(start_us), float(end_us)))
        return self

    def cpu_stall(self, at_us: float, duration_us: float) -> "FaultPlan":
        self.events.append(ControlCpuStall(float(at_us), float(duration_us)))
        return self

    def reseeded(self, seed: int) -> "FaultPlan":
        """A copy of this plan with a different RNG seed, same events.

        Sweep workers use this to derive every per-point plan from the
        *point's* seed: child RNG streams (per-packet drop rolls) then
        depend only on the plan contents and the point identity, never on
        the parent process's plan instance -- the same point replayed
        in-process and in a spawned worker is byte-identical.
        """
        return FaultPlan(seed=int(seed), events=list(self.events))

    # -- introspection -----------------------------------------------------

    @property
    def needs_failover(self) -> bool:
        return any(isinstance(e, SwitchCrash) for e in self.events)

    def validate(self) -> "FaultPlan":
        """Reject malformed plans before they touch a cluster.

        Every interval must be finite and non-empty (an open-ended outage
        would hang retransmission loops forever -- blade faults are
        transient by the paper's scope), probabilities must be in [0, 1),
        and delays/durations non-negative.
        """
        for ev in self.events:
            if isinstance(ev, SwitchCrash):
                if ev.at_us < 0:
                    raise ValueError(f"switch crash at negative time {ev.at_us}")
            elif isinstance(ev, LinkLossWindow):
                if not 0 <= ev.start_us < ev.end_us:
                    raise ValueError(f"bad loss window [{ev.start_us}, {ev.end_us})")
                if not 0.0 <= ev.drop_prob < 1.0:
                    raise ValueError(f"drop probability {ev.drop_prob} not in [0, 1)")
                if ev.extra_delay_us < 0:
                    raise ValueError(f"negative delay spike {ev.extra_delay_us}")
                if ev.direction not in DIRECTIONS:
                    raise ValueError(f"unknown direction {ev.direction!r}")
            elif isinstance(ev, (BladeSlowdown, BladeOutage)):
                if not 0 <= ev.start_us < ev.end_us:
                    raise ValueError(
                        f"bad blade fault window [{ev.start_us}, {ev.end_us})"
                    )
                if isinstance(ev, BladeSlowdown) and ev.factor < 1.0:
                    raise ValueError(f"slowdown factor {ev.factor} < 1")
            elif isinstance(ev, ControlCpuStall):
                if ev.at_us < 0 or ev.duration_us <= 0:
                    raise ValueError("cpu stall needs at_us >= 0, duration > 0")
        return self

    def describe(self) -> List[str]:
        """One human-readable line per event, in schedule order."""
        lines = []
        for ev in sorted(self.events, key=_event_time):
            if isinstance(ev, SwitchCrash):
                lines.append(f"t={ev.at_us:g}us switch crash (fail-over)")
            elif isinstance(ev, LinkLossWindow):
                where = ev.port or "all links"
                parts = []
                if ev.drop_prob:
                    parts.append(f"loss {ev.drop_prob:.2%}")
                if ev.extra_delay_us:
                    parts.append(f"+{ev.extra_delay_us:g}us delay")
                lines.append(
                    f"t=[{ev.start_us:g}, {ev.end_us:g})us {where} "
                    f"({ev.direction}): {', '.join(parts) or 'no-op'}"
                )
            elif isinstance(ev, BladeSlowdown):
                lines.append(
                    f"t=[{ev.start_us:g}, {ev.end_us:g})us mem{ev.blade_id} "
                    f"slow x{ev.factor:g}"
                )
            elif isinstance(ev, BladeOutage):
                lines.append(
                    f"t=[{ev.start_us:g}, {ev.end_us:g})us mem{ev.blade_id} paused"
                )
            elif isinstance(ev, ControlCpuStall):
                lines.append(
                    f"t={ev.at_us:g}us control CPU stall {ev.duration_us:g}us"
                )
        return lines


def _event_time(ev: FaultEvent) -> float:
    return getattr(ev, "at_us", getattr(ev, "start_us", 0.0))
