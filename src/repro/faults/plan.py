"""Deterministic fault plans: *what* goes wrong, *when*.

A :class:`FaultPlan` is a declarative schedule of fault events against a
running cluster -- switch crashes, per-link loss/delay windows, memory-blade
slowdowns and outages, control-CPU stalls.  Plans are plain data: building
one touches no simulator state, so the same plan can be validated, printed,
or replayed against many clusters.  All randomness (per-packet drop rolls)
derives from the plan's single ``seed``, so two runs of the same plan on the
same workload produce byte-identical traces.

Scope note (paper Section 4.4): MIND's fail-over story covers *switch*
failures -- compute/memory blade fault-tolerance is deferred to prior work.
Blade faults here are therefore transient (slow/paused intervals recovered
by retransmission), never permanent data loss.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

#: link directions a loss/delay window may cover.
DIRECTIONS = ("to_switch", "from_switch", "both")


class FaultPlanError(ValueError):
    """A fault plan that cannot be armed on a cluster."""


class FaultEventError(FaultPlanError):
    """One event is malformed on its own (bad window, probability, factor)."""


class FaultOverlapError(FaultPlanError):
    """Two events contradict each other on the same target (an outage
    overlapping a slowdown on one blade, two switch crashes, ...)."""


@dataclass(frozen=True)
class SwitchCrash:
    """Primary-switch failure at ``at_us``; triggers the fail-over path."""

    at_us: float


@dataclass(frozen=True)
class LinkLossWindow:
    """Packet loss and/or delay inflation on links during a time window.

    ``port`` selects one attached endpoint's links by name (``compute0``,
    ``mem1``); None means every link in the network.  ``direction``
    restricts to the uplink or downlink half.
    """

    start_us: float
    end_us: float
    drop_prob: float = 0.0
    extra_delay_us: float = 0.0
    port: Optional[str] = None
    direction: str = "both"


@dataclass(frozen=True)
class BladeSlowdown:
    """Memory blade serves NIC/DRAM requests ``factor``x slower."""

    blade_id: int
    start_us: float
    end_us: float
    factor: float = 4.0


@dataclass(frozen=True)
class BladeOutage:
    """Memory blade answers nothing during the window; the switch's
    timeout/retry machinery rides it out."""

    blade_id: int
    start_us: float
    end_us: float


@dataclass(frozen=True)
class ControlCpuStall:
    """The switch control CPU wedges for ``duration_us`` starting at
    ``at_us``: queued rule updates and syscalls wait it out."""

    at_us: float
    duration_us: float


FaultEvent = Union[
    SwitchCrash, LinkLossWindow, BladeSlowdown, BladeOutage, ControlCpuStall
]


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of fault events.

    Builder methods chain::

        plan = (
            FaultPlan(seed=7)
            .switch_crash(at_us=5_000)
            .packet_loss(2_000, 8_000, prob=0.01)
            .blade_slow(0, 3_000, 6_000, factor=4.0)
        )
    """

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    # -- builders ----------------------------------------------------------

    def switch_crash(self, at_us: float) -> "FaultPlan":
        self.events.append(SwitchCrash(float(at_us)))
        return self

    def packet_loss(
        self,
        start_us: float,
        end_us: float,
        prob: float,
        port: Optional[str] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        self.events.append(
            LinkLossWindow(
                float(start_us), float(end_us), drop_prob=float(prob),
                port=port, direction=direction,
            )
        )
        return self

    def delay_spike(
        self,
        start_us: float,
        end_us: float,
        extra_delay_us: float,
        port: Optional[str] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        self.events.append(
            LinkLossWindow(
                float(start_us), float(end_us),
                extra_delay_us=float(extra_delay_us),
                port=port, direction=direction,
            )
        )
        return self

    def blade_slow(
        self, blade_id: int, start_us: float, end_us: float, factor: float = 4.0
    ) -> "FaultPlan":
        self.events.append(
            BladeSlowdown(int(blade_id), float(start_us), float(end_us), float(factor))
        )
        return self

    def blade_crash(
        self, blade_id: int, start_us: float, end_us: float
    ) -> "FaultPlan":
        self.events.append(BladeOutage(int(blade_id), float(start_us), float(end_us)))
        return self

    def cpu_stall(self, at_us: float, duration_us: float) -> "FaultPlan":
        self.events.append(ControlCpuStall(float(at_us), float(duration_us)))
        return self

    def reseeded(self, seed: int) -> "FaultPlan":
        """A copy of this plan with a different RNG seed, same events.

        Sweep workers use this to derive every per-point plan from the
        *point's* seed: child RNG streams (per-packet drop rolls) then
        depend only on the plan contents and the point identity, never on
        the parent process's plan instance -- the same point replayed
        in-process and in a spawned worker is byte-identical.
        """
        return FaultPlan(seed=int(seed), events=list(self.events))

    # -- introspection -----------------------------------------------------

    @property
    def needs_failover(self) -> bool:
        return any(isinstance(e, SwitchCrash) for e in self.events)

    def validate(self) -> "FaultPlan":
        """Reject malformed plans before they touch a cluster.

        Per-event (:class:`FaultEventError`): every interval must be finite
        and non-empty (an open-ended outage would hang retransmission loops
        forever -- blade faults are transient by the paper's scope),
        probabilities must be in [0, 1), and delays/durations non-negative.

        Cross-event (:class:`FaultOverlapError`): events that contradict
        each other on the same target are rejected -- a second switch crash
        (there is one backup switch; fail-over runs once), overlapping
        outage/slowdown windows on one memory blade (a paused blade cannot
        also be "serving slowly"), overlapping same-knob loss or delay
        windows on the same link set (the injector would apply both rolls),
        and overlapping control-CPU stalls.  A loss window overlapping a
        *delay* window on the same link is fine: the effects compose.
        """
        for ev in self.events:
            if isinstance(ev, SwitchCrash):
                if ev.at_us < 0:
                    raise FaultEventError(
                        f"switch crash at negative time {ev.at_us}"
                    )
            elif isinstance(ev, LinkLossWindow):
                if not 0 <= ev.start_us < ev.end_us:
                    raise FaultEventError(
                        f"bad loss window [{ev.start_us}, {ev.end_us})"
                    )
                if not 0.0 <= ev.drop_prob < 1.0:
                    raise FaultEventError(
                        f"drop probability {ev.drop_prob} not in [0, 1)"
                    )
                if ev.extra_delay_us < 0:
                    raise FaultEventError(
                        f"negative delay spike {ev.extra_delay_us}"
                    )
                if ev.direction not in DIRECTIONS:
                    raise FaultEventError(f"unknown direction {ev.direction!r}")
            elif isinstance(ev, (BladeSlowdown, BladeOutage)):
                if not 0 <= ev.start_us < ev.end_us:
                    raise FaultEventError(
                        f"bad blade fault window [{ev.start_us}, {ev.end_us})"
                    )
                if isinstance(ev, BladeSlowdown) and ev.factor < 1.0:
                    raise FaultEventError(f"slowdown factor {ev.factor} < 1")
            elif isinstance(ev, ControlCpuStall):
                if ev.at_us < 0 or ev.duration_us <= 0:
                    raise FaultEventError(
                        "cpu stall needs at_us >= 0, duration > 0"
                    )
        self._validate_overlaps()
        return self

    def _validate_overlaps(self) -> None:
        crashes = [e for e in self.events if isinstance(e, SwitchCrash)]
        if len(crashes) > 1:
            raise FaultOverlapError(
                f"{len(crashes)} switch crashes scheduled; the fail-over "
                "path has one backup switch, so a plan may crash the "
                "primary at most once"
            )
        blade_windows = [
            e for e in self.events if isinstance(e, (BladeSlowdown, BladeOutage))
        ]
        for a, b in itertools.combinations(blade_windows, 2):
            if a.blade_id != b.blade_id:
                continue
            if a.start_us < b.end_us and b.start_us < a.end_us:
                raise FaultOverlapError(
                    f"contradictory blade faults on mem{a.blade_id}: "
                    f"{_describe_event(a)} overlaps {_describe_event(b)}"
                )
        stalls = [e for e in self.events if isinstance(e, ControlCpuStall)]
        for a, b in itertools.combinations(stalls, 2):
            if (a.at_us < b.at_us + b.duration_us
                    and b.at_us < a.at_us + a.duration_us):
                raise FaultOverlapError(
                    f"overlapping control-CPU stalls: {_describe_event(a)} "
                    f"overlaps {_describe_event(b)}"
                )
        links = [e for e in self.events if isinstance(e, LinkLossWindow)]
        for a, b in itertools.combinations(links, 2):
            if not (a.start_us < b.end_us and b.start_us < a.end_us):
                continue
            if not _links_intersect(a, b):
                continue
            if a.drop_prob and b.drop_prob:
                raise FaultOverlapError(
                    f"overlapping loss windows on the same links: "
                    f"{_describe_event(a)} overlaps {_describe_event(b)}"
                )
            if a.extra_delay_us and b.extra_delay_us:
                raise FaultOverlapError(
                    f"overlapping delay windows on the same links: "
                    f"{_describe_event(a)} overlaps {_describe_event(b)}"
                )

    def describe(self) -> List[str]:
        """Human-readable schedule: one line per event in time order, then
        the merged per-target timeline (every target's events on one line,
        so overlaps and gaps are visible at a glance)."""
        lines = [_describe_event(ev) for ev in sorted(self.events, key=_event_time)]
        timeline = self.target_timeline()
        if len(timeline) > 1 or any(len(evs) > 1 for evs in timeline.values()):
            lines.append("per-target timeline:")
            for target, events in timeline.items():
                merged = "; ".join(
                    _describe_event(ev, with_target=False) for ev in events
                )
                lines.append(f"  {target}: {merged}")
        return lines

    def target_timeline(self) -> "Dict[str, List[FaultEvent]]":
        """Events grouped by target, time-ordered within each target.

        Targets sort switch first, then links, blades, and the control
        CPU -- the order the fault propagates through the system.
        """
        groups: Dict[str, List[FaultEvent]] = {}
        for ev in sorted(self.events, key=_event_time):
            groups.setdefault(_event_target(ev), []).append(ev)

        def rank(target: str) -> int:
            if target == "switch":
                return 0
            if target.startswith("links"):
                return 1
            if target.startswith("mem"):
                return 2
            return 3

        return dict(sorted(groups.items(), key=lambda kv: (rank(kv[0]), kv[0])))


def _event_time(ev: FaultEvent) -> float:
    return getattr(ev, "at_us", getattr(ev, "start_us", 0.0))


def _event_target(ev: FaultEvent) -> str:
    if isinstance(ev, SwitchCrash):
        return "switch"
    if isinstance(ev, LinkLossWindow):
        scope = ev.port or "all"
        return f"links[{scope}/{ev.direction}]"
    if isinstance(ev, (BladeSlowdown, BladeOutage)):
        return f"mem{ev.blade_id}"
    return "control-cpu"


def _describe_event(ev: FaultEvent, with_target: bool = True) -> str:
    if isinstance(ev, SwitchCrash):
        return f"t={ev.at_us:g}us switch crash (fail-over)"
    if isinstance(ev, LinkLossWindow):
        parts = []
        if ev.drop_prob:
            parts.append(f"loss {ev.drop_prob:.2%}")
        if ev.extra_delay_us:
            parts.append(f"+{ev.extra_delay_us:g}us delay")
        effect = ", ".join(parts) or "no-op"
        if not with_target:
            return f"t=[{ev.start_us:g}, {ev.end_us:g})us {effect}"
        where = ev.port or "all links"
        return (
            f"t=[{ev.start_us:g}, {ev.end_us:g})us {where} "
            f"({ev.direction}): {effect}"
        )
    if isinstance(ev, BladeSlowdown):
        target = "" if not with_target else f"mem{ev.blade_id} "
        return f"t=[{ev.start_us:g}, {ev.end_us:g})us {target}slow x{ev.factor:g}"
    if isinstance(ev, BladeOutage):
        target = "" if not with_target else f"mem{ev.blade_id} "
        return f"t=[{ev.start_us:g}, {ev.end_us:g})us {target}paused"
    assert isinstance(ev, ControlCpuStall)
    return f"t={ev.at_us:g}us control CPU stall {ev.duration_us:g}us"


def _links_intersect(a: LinkLossWindow, b: LinkLossWindow) -> bool:
    """Whether two loss/delay windows can touch the same link direction."""
    if a.port is not None and b.port is not None and a.port != b.port:
        return False
    if a.direction != "both" and b.direction != "both":
        return a.direction == b.direction
    return True
