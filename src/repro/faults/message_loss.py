"""Protocol-level message-loss injection for Section 4.4 testing.

This injector drops whole coherence messages (invalidations, ACKs,
fetches) regardless of route, with per-message probabilities drawn from a
seeded generator so failure tests are reproducible.  Scheduled,
link-level fault windows live in :mod:`repro.faults.injector`.

Historically this class lived in :mod:`repro.core.coherence` (first
exported as ``FaultInjector``); importing it from there still works but
raises a :class:`DeprecationWarning`.
"""

from __future__ import annotations


class MessageLossInjector:
    """Deterministic per-message drop decisions for coherence traffic."""

    def __init__(
        self,
        rng,
        drop_invalidations: float = 0.0,
        drop_acks: float = 0.0,
        drop_fetches: float = 0.0,
    ):
        self._rng = rng
        self.drop_invalidations = drop_invalidations
        self.drop_acks = drop_acks
        self.drop_fetches = drop_fetches
        self.dropped = 0

    def _roll(self, probability: float) -> bool:
        if probability and self._rng.random() < probability:
            self.dropped += 1
            return True
        return False

    def should_drop_invalidation(self) -> bool:
        return self._roll(self.drop_invalidations)

    def should_drop_ack(self) -> bool:
        return self._roll(self.drop_acks)

    def should_drop_fetch(self) -> bool:
        return self._roll(self.drop_fetches)
