"""In-simulation switch fail-over (Section 4.4), end to end.

The static pieces already exist -- :class:`ControlPlaneReplicator` keeps a
backup-consistent snapshot, :func:`rebuild_data_plane` reprograms tables
from it.  This module wires them into a *running* cluster:

1. The replicator re-captures on every metadata mutation (MIND replicates
   on the metadata path; syscalls block on it, so the backup never lags).
2. On a crash, the coherence engine's gate closes: new fault transactions
   queue, experiencing the unavailability window as added latency.
3. After a modelled detection delay, the backup switch's tables are
   programmed from the snapshot (cost proportional to the rule count) and
   every component is repointed at the rebuilt plane.  The directory comes
   up all-Invalid -- it is deliberately not replicated.
4. Compute blades are quiesced: a full-range invalidation flushes every
   dirty page through the new plane, so memory blades hold the ground
   truth and the empty directory is *coherent* with blade caches (cold).
5. The gate opens.  Transactions that were in flight on the dead switch
   come back ``stale`` and are re-issued by the blades; re-faults re-warm
   the directory (the re-fault storm the availability report quantifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..core.failures import ControlPlaneReplicator, rebuild_data_plane
from ..switchsim.packets import InvalidationRequest
from ..switchsim.sram import RegisterArray
from ..switchsim.tcam import Tcam

#: quiesce invalidation spans the whole virtual address space.
FULL_VA_SPAN = 1 << 48


@dataclass
class FailoverConfig:
    """Cost model for the fail-over sequence."""

    #: crash-to-detection delay (heartbeat/BFD timescale).
    detection_us: float = 500.0
    #: fixed backup bring-up cost (boot the pipeline program).
    rebuild_base_us: float = 200.0
    #: per-rule table-install cost on the backup (PCIe writes).
    rule_install_us: float = 2.0
    #: how long after recovery faults are still attributed to the
    #: "degraded" phase (directory re-warm window) before "post".
    degraded_window_us: float = 2_000.0


class FailoverOrchestrator:
    """Runs the Section 4.4 switch fail-over inside the simulation."""

    def __init__(self, cluster, config: Optional[FailoverConfig] = None):
        self.cluster = cluster
        self.config = config or FailoverConfig()
        self.engine = cluster.engine
        self.mmu = cluster.mmu
        self.replicator = ControlPlaneReplicator(self.mmu.controller)
        # Re-capture on the metadata path: the snapshot is never stale when
        # the crash comes (the paper's consistent-replication guarantee).
        self.mmu.controller.set_metadata_listener(self._on_metadata_change)
        self.mmu.coherence.phase_tracking = True
        self.mmu.coherence.set_phase("pre")
        self.crashes = 0
        #: completed outage windows as (start_us, end_us).
        self.outage_windows: List[Tuple[float, float]] = []

    def _on_metadata_change(self) -> None:
        self.replicator.capture()

    # -- scheduling --------------------------------------------------------

    def crash_at(self, at_us: float) -> None:
        """Schedule a primary-switch crash at simulated time ``at_us``."""
        self.engine.process(self._crash_timer(at_us), name=f"switch-crash@{at_us:g}")

    def _crash_timer(self, at_us: float) -> Generator:
        if at_us > self.engine.now:
            yield at_us - self.engine.now
        yield self.engine.process(self.crash_primary())

    # -- the fail-over sequence --------------------------------------------

    def crash_primary(self) -> Generator:
        """Process generator: crash now, recover on the backup switch."""
        engine = self.engine
        coherence = self.mmu.coherence
        stats = self.cluster.stats
        tracer = engine.tracer
        t_crash = engine.now
        self.crashes += 1
        stats.incr("switch_crashes")
        coherence.set_phase("degraded")
        coherence.begin_outage()
        if tracer.enabled:
            tracer.instant(t_crash, "fault", "switch_crash", track=tracer.track("faults"))
        timeline = stats.timeline
        if timeline is not None:
            timeline.mark(t_crash, "switch_crash")

        # Detection: heartbeats miss, the backup decides to take over.
        yield self.config.detection_us

        # Program the backup's physical tables from the replicated
        # control-plane state.  Install cost scales with the rule count.
        cfg = self.mmu.config
        protection_budget = int(cfg.match_action_capacity * cfg.protection_share)
        translation_budget = cfg.match_action_capacity - protection_budget
        snapshot = self.replicator.snapshot
        xlate_tcam = Tcam(translation_budget, name="translation")
        protection_tcam = Tcam(protection_budget, name="protection")
        directory_sram = RegisterArray(cfg.directory_capacity, name="directory")
        plane = rebuild_data_plane(snapshot, xlate_tcam, protection_tcam, directory_sram)
        rules_installed = len(xlate_tcam) + len(protection_tcam)
        yield self.config.rebuild_base_us + rules_installed * self.config.rule_install_us
        stats.incr("failover_rules_installed", rules_installed)

        # Metadata can mutate while the rebuild install is in flight -- an
        # autoscaler placing a thread, a live mmap/mprotect syscall.  Those
        # mutations re-captured the replicated snapshot, but the tables we
        # just programmed came from the older one; adopting them would
        # silently drop the newer translation/protection entries.  Catch
        # up: rebuild from the latest snapshot (paying another install
        # pass) until no mutation raced the install.
        while self.replicator.snapshot.version != snapshot.version:
            snapshot = self.replicator.snapshot
            xlate_tcam = Tcam(translation_budget, name="translation")
            protection_tcam = Tcam(protection_budget, name="protection")
            directory_sram = RegisterArray(cfg.directory_capacity, name="directory")
            plane = rebuild_data_plane(
                snapshot, xlate_tcam, protection_tcam, directory_sram
            )
            rules_installed = len(xlate_tcam) + len(protection_tcam)
            stats.incr("failover_catchup_rebuilds")
            stats.incr("failover_rules_installed", rules_installed)
            yield (
                self.config.rebuild_base_us
                + rules_installed * self.config.rule_install_us
            )

        self.mmu.adopt_data_plane(plane, xlate_tcam, protection_tcam, directory_sram)

        # Quiesce the blades: flush all dirty pages through the new plane
        # so memory holds ground truth behind the all-Invalid directory.
        yield from self._quiesce_blades()

        coherence.end_outage()
        t_up = engine.now
        outage = t_up - t_crash
        self.outage_windows.append((t_crash, t_up))
        stats.record_latency("outage_window", outage)
        stats.set_gauge(
            "unavailability_us", sum(e - s for s, e in self.outage_windows)
        )
        stats.incr("failovers_completed")
        if tracer.enabled:
            tracer.complete(
                t_crash, outage, "fault", "failover", track=tracer.track("faults")
            )
        if timeline is not None:
            timeline.mark(t_up, "failover_complete")
        # Faults stay attributed to "degraded" while the directory re-warms.
        engine.process(self._phase_flip(), name="failover-phase-flip")

    def _quiesce_blades(self) -> Generator:
        """Quiesce invalidation on every compute blade, concurrently.

        Each blade flushes its dirty pages (asynchronously, through the new
        plane) and drops everything else; we then wait for the write-backs
        to land so recovery completes with memory current.

        By default the invalidation spans the whole VA space.  A rack node
        in a multi-rack fabric sets ``cluster.quiesce_range`` to the VA
        slice this switch is home for: only pages whose directory died
        with the switch need flushing, so blades keep serving the other
        racks' pages from cache straight through the outage.
        """
        blades = self.cluster.compute_blades
        qrange = getattr(self.cluster, "quiesce_range", None)
        base, span = (0, FULL_VA_SPAN) if qrange is None else qrange
        inval = InvalidationRequest(
            region_base=base,
            region_size=span,
            sharers=frozenset(b.port.port_id for b in blades),
            requester_port=-1,
            target_va=-1,
        )
        procs = [
            self.engine.process(
                blade.handle_invalidation(inval), name=f"quiesce-blade{blade.blade_id}"
            )
            for blade in blades
        ]
        if procs:
            yield self.engine.all_of(procs)
        yield from self.mmu.coherence.drain_writebacks(base, span)

    def _phase_flip(self) -> Generator:
        yield self.config.degraded_window_us
        self.mmu.coherence.set_phase("post")
