"""repro: a full reproduction of MIND (SOSP 2021).

MIND is an in-network memory management unit for rack-scale memory
disaggregation: address translation, memory protection, and directory-based
cache coherence all execute in a programmable switch between compute and
memory blades.  This package reproduces the system and its evaluation as a
deterministic discrete-event simulation.

Start with :class:`repro.api.MindSystem` for the transparent shared-memory
API, or :mod:`repro.runner` to replay workloads on MIND and the paper's
baselines (GAM-style DSM, FastSwap-style swapping).
"""

from .api import MindProcess, MindSystem, MindThread
from .cluster import ClusterConfig, MindCluster
from .core.mmu import MindConfig
from .core.vma import PermissionClass
from .sim.network import PAGE_SIZE, NetworkConfig

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "MindCluster",
    "MindConfig",
    "MindProcess",
    "MindSystem",
    "MindThread",
    "NetworkConfig",
    "PAGE_SIZE",
    "PermissionClass",
    "__version__",
]
