"""Multi-rack MIND: scaling beyond a single switch (Section 8).

The paper's design is rack-scale: one programmable switch owns all memory
management.  Section 8 sketches the next step -- "a shift similar to the
shift from single node CPUs to multi-node NUMA architectures" -- where the
global address space spans racks.  This module implements that extension
with a *home-rack* design:

- The global VA space is range-partitioned across racks; each rack's
  switch is the **home** for its partition: it runs translation,
  protection and the coherence directory for those addresses, exactly as
  in the single-rack system.
- A compute blade's fault on a remote-homed address is forwarded over the
  **spine** to the home rack's switch, which executes the transaction
  treating the remote blade as a sharer reachable through the spine.
  Invalidations of cross-rack sharers likewise traverse the spine.
- Mechanically, each compute blade has its real port on its home rack's
  network plus a *spine-facing proxy port* on every other rack's network
  whose links carry the extra inter-rack latency.  The home switch's
  protocol code is completely unchanged -- distance is encoded in the
  port, which is the NUMA analogy made literal.

The cost structure this produces: intra-rack faults at the paper's ~10 µs,
cross-rack faults one spine round-trip dearer, and write sharing across
racks correspondingly more expensive -- quantified in
``benchmarks/test_extension_multirack.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional

from .blades.compute import ComputeBlade
from .blades.memory import MemoryBlade
from .core.mmu import InNetworkMmu, MindConfig
from .core.vma import PermissionClass
from .sim.engine import Engine
from .sim.network import Network, NetworkConfig, Port
from .sim.stats import StatsCollector


@dataclass
class MultiRackConfig:
    """Shape of the multi-rack fabric."""

    num_racks: int = 2
    compute_blades_per_rack: int = 2
    memory_blades_per_rack: int = 1
    cache_capacity_pages: int = 1024
    #: extra one-way latency a packet pays to cross the spine (two extra
    #: hops: rack switch -> spine switch -> rack switch).
    spine_extra_us: float = 3.4
    #: maximum memory blades a rack may ever host (sizes the VA slices).
    max_memory_blades_per_rack: int = 8
    mind: MindConfig = field(default_factory=lambda: MindConfig(
        memory_blade_capacity=1 << 28, enable_bounded_splitting=False
    ))
    network: NetworkConfig = field(default_factory=NetworkConfig)

    @property
    def rack_va_span(self) -> int:
        return self.max_memory_blades_per_rack * self.mind.memory_blade_capacity


class RackRouter:
    """A compute blade's data path in the multi-rack fabric.

    Routes every operation to the *home rack* of its virtual address and
    presents the right port (real or spine proxy) so the home switch's
    unchanged protocol code charges the right wire latency.
    """

    def __init__(self, fabric: "MultiRackFabric", home_rack: int):
        self.fabric = fabric
        self.home_rack = home_rack
        #: rack index -> the port this blade is known by on that rack.
        self.ports: Dict[int, Port] = {}

    # ComputeBlade.__init__ calls this with its real (home-rack) port.
    def register_compute_blade(self, port, handler, serve_page=None) -> None:
        cfg = self.fabric.config
        for rack_idx, rack in enumerate(self.fabric.racks):
            if rack_idx == self.home_rack:
                rack_port = port
            else:
                # Spine proxy: same port id, links with inter-rack latency.
                spine_cfg = replace(
                    cfg.network,
                    link_propagation_us=cfg.network.link_propagation_us
                    + cfg.spine_extra_us,
                )
                rack_port = Port(
                    self.fabric.engine, spine_cfg, f"{port.name}@rack{rack_idx}",
                    port.port_id,
                )
            self.ports[rack_idx] = rack_port
            rack.coherence.register_compute_blade(rack_port, handler, serve_page)

    def _home_of(self, va: int) -> int:
        rack = int(va) // self.fabric.config.rack_va_span
        if not 0 <= rack < len(self.fabric.racks):
            raise ValueError(f"va {va:#x} outside every rack's partition")
        return rack

    def handle_fault(self, req) -> Generator:
        rack = self._home_of(req.va)
        if rack != self.home_rack:
            self.fabric.stats.incr("cross_rack_faults")
        else:
            self.fabric.stats.incr("intra_rack_faults")
        return self.fabric.racks[rack].coherence.handle_fault(req)

    def flush_page_async(self, src_port, page_va: int, data):
        rack = self._home_of(page_va)
        return self.fabric.racks[rack].coherence.flush_page_async(
            self.ports[rack], page_va, data
        )

    def flush_page(self, src_port, page_va: int, data) -> Generator:
        rack = self._home_of(page_va)
        return self.fabric.racks[rack].coherence.flush_page(
            self.ports[rack], page_va, data
        )


class MultiRackFabric:
    """The assembled multi-rack system."""

    def __init__(self, config: Optional[MultiRackConfig] = None):
        self.config = config or MultiRackConfig()
        cfg = self.config
        self.engine = Engine()
        self.stats = StatsCollector()
        self.racks: List[InNetworkMmu] = []
        self.networks: List[Network] = []
        self.memory_blades: List[MemoryBlade] = []
        for r in range(cfg.num_racks):
            # Globally unique port ids: they key every rack's registries.
            network = Network(self.engine, cfg.network, port_id_base=r * 1000)
            mind = replace(cfg.mind, va_base=r * cfg.rack_va_span)
            mmu = InNetworkMmu(self.engine, network, mind, stats=self.stats)
            self.networks.append(network)
            self.racks.append(mmu)
            for m in range(cfg.memory_blades_per_rack):
                blade = MemoryBlade(
                    blade_id=r * 100 + m,
                    network=network,
                    capacity_bytes=cfg.mind.memory_blade_capacity,
                    store_data=True,
                )
                mmu.add_memory_blade(blade)
                self.memory_blades.append(blade)
        # Compute blades: real port at home rack, proxies elsewhere.
        self.compute_blades: List[ComputeBlade] = []
        self.routers: List[RackRouter] = []
        next_id = 0
        for r in range(cfg.num_racks):
            for _c in range(cfg.compute_blades_per_rack):
                router = RackRouter(self, home_rack=r)
                blade = ComputeBlade(
                    blade_id=next_id,
                    engine=self.engine,
                    network=self.networks[r],
                    datapath=router,
                    cache_capacity_pages=cfg.cache_capacity_pages,
                    stats=self.stats,
                )
                blade.home_rack = r
                self.compute_blades.append(blade)
                self.routers.append(router)
                next_id += 1
        # One global protection domain namespace: processes exist in every
        # rack's controller, sharing a fabric-wide pdid.
        self._next_pdid = 1
        self._rack_pids: Dict[int, List[int]] = {}

    # -- fabric-level process/memory management -----------------------------

    def spawn_process(self, name: str = "proc") -> int:
        """Create a fabric-wide process; returns its global PDID."""
        pdid = self._next_pdid
        self._next_pdid += 1
        pids = []
        for rack in self.racks:
            task = rack.controller.sys_exec(f"{name}@{pdid}")
            pids.append(task.pid)
        self._rack_pids[pdid] = pids
        return pdid

    def mmap(self, pdid: int, length: int,
             perm: PermissionClass = PermissionClass.READ_WRITE,
             rack: Optional[int] = None) -> int:
        """Allocate on the least-loaded rack (or a named one); returns VA.

        The vma's home rack installs protection under the *global* pdid so
        any rack's compute blades can fault on it.
        """
        if rack is None:
            rack = min(
                range(len(self.racks)),
                key=lambda r: sum(
                    self.racks[r].allocator.allocated_per_blade().values()
                ),
            )
        local_pid = self._rack_pids[pdid][rack]
        return self.racks[rack].controller.sys_mmap(
            local_pid, length, perm, pdid=pdid
        )

    def rack_of(self, va: int) -> int:
        return int(va) // self.config.rack_va_span

    # -- execution helpers ----------------------------------------------------

    def run_process(self, gen, name: Optional[str] = None):
        return self.engine.run_process(gen, name)

    def run_all(self, gens: List) -> List:
        procs = [self.engine.process(g) for g in gens]
        return self.engine.run_until_complete(self.engine.all_of(procs))
