"""``python -m repro``: a one-minute tour of the reproduction.

Builds a small rack, demonstrates cross-blade coherent shared memory, and
prints the MSI transition latencies the paper reports in Fig. 7 (left).
For the full evaluation, run ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import sys

from .api import MindSystem


def main() -> int:
    print(__doc__)
    system = MindSystem(num_compute_blades=3, num_memory_blades=2)
    proc = system.spawn_process("tour")
    buf = proc.mmap(1 << 20)
    t0, t1, t2 = (proc.spawn_thread() for _ in range(3))

    t0.touch(buf)                 # I->S
    t1.touch(buf)                 # S->S
    t2.touch(buf, write=True)     # S->M (parallel invalidation)
    t0.touch(buf, write=True)     # M->M (ownership steal)
    t1.touch(buf)                 # M->S (owner downgrade)
    t0.write(buf, b"in-network coherent")
    assert t2.read(buf, 19) == b"in-network coherent"

    print("three compute blades share one coherent address space;")
    print("measured MSI transition latencies (paper: ~9 us / ~18 us):\n")
    for label in ("I->S", "S->S", "S->M", "M->M", "M->S"):
        summary = system.stats.latency_summary(f"fault:{label}")
        if summary.count:
            print(f"  {label:5s} {summary.mean:6.2f} us")
    print(
        f"\nswitch served {system.stats.counter('remote_accesses')} remote "
        f"accesses, {system.stats.counter('invalidations_sent')} "
        "invalidations -- all in the network fabric."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
