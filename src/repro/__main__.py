"""``python -m repro``: a one-minute tour, plus observability reports.

Subcommands:

- ``tour`` (default) -- build a small rack, demonstrate cross-blade
  coherent shared memory, and print the MSI transition latencies the paper
  reports in Fig. 7 (left).
- ``report`` -- replay a small synthetic workload with tracing enabled and
  print a per-run report: latency percentiles, the span-derived fault-path
  breakdown, queueing hotspots and switch-resource peaks.  Optionally
  export the event trace as Chrome trace-event JSON (``--trace-out``,
  loadable in ``chrome://tracing`` / Perfetto) or JSONL (``--jsonl-out``).
- ``sweep`` -- run a declarative experiment grid (systems x blade counts x
  workload knobs x seeds) across worker processes, aggregate the results
  into a schema-versioned JSON document, and optionally gate against a
  baseline (``--compare-to``).  See ``python -m repro sweep --help``.
- ``serve`` -- run the multi-tenant elastic-KVS serving scenario (open-loop
  diurnal tenants, admission control with retry-storm defense, a queue-depth
  autoscaler, optional chaos) and print per-tenant availability/SLO curves.
- ``profile`` -- time the simulation *kernel* on a sweep spec: wall
  seconds, engine events/sec, accesses/sec, optional cProfile hotspots,
  and an advisory comparison against the checked-in speed baseline
  (``benchmarks/BENCH_speed.json``).

For the full evaluation, run ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .alloc import POLICIES as ALLOC_POLICIES
from .api import MindSystem
from .faults import FaultPlan
from .runner import SYSTEMS, RunnerConfig, run_system
from .multirack.cli import add_multirack_parser
from .perf.cli import add_profile_parser
from .service.cli import add_serve_parser
from .sweep.cli import add_sweep_parser
from .workloads import UniformSharingWorkload


def tour(_args: argparse.Namespace) -> int:
    print(__doc__)
    system = MindSystem(num_compute_blades=3, num_memory_blades=2)
    proc = system.spawn_process("tour")
    buf = proc.mmap(1 << 20)
    t0, t1, t2 = (proc.spawn_thread() for _ in range(3))

    t0.touch(buf)                 # I->S
    t1.touch(buf)                 # S->S
    t2.touch(buf, write=True)     # S->M (parallel invalidation)
    t0.touch(buf, write=True)     # M->M (ownership steal)
    t1.touch(buf)                 # M->S (owner downgrade)
    t0.write(buf, b"in-network coherent")
    assert t2.read(buf, 19) == b"in-network coherent"

    print("three compute blades share one coherent address space;")
    print("measured MSI transition latencies (paper: ~9 us / ~18 us):\n")
    for label in ("I->S", "S->S", "S->M", "M->M", "M->S"):
        summary = system.stats.latency_summary(f"fault:{label}")
        if summary.count:
            print(f"  {label:5s} {summary.mean:6.2f} us")
    print(
        f"\nswitch served {system.stats.counter('remote_accesses')} remote "
        f"accesses, {system.stats.counter('invalidations_sent')} "
        "invalidations -- all in the network fabric."
    )
    return 0


def _parse_window(spec: str, what: str, parts_min: int, parts_max: int) -> List[str]:
    parts = spec.split(":")
    if not parts_min <= len(parts) <= parts_max:
        raise SystemExit(
            f"bad --{what} {spec!r}: expected {parts_min}-{parts_max} "
            "colon-separated fields"
        )
    return parts


def build_fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Assemble a FaultPlan from the report subcommand's fault flags.

    Window syntaxes (times in simulated microseconds):

    - ``--packet-loss START:END:PROB[:PORT]``
    - ``--delay-spike START:END:EXTRA_US[:PORT]``
    - ``--blade-slow BLADE:START:END[:FACTOR]``
    - ``--blade-crash BLADE:START:END``
    - ``--cpu-stall AT:DURATION``
    - ``--switch-crash-at AT``
    """
    plan = FaultPlan(seed=args.fault_seed)
    if args.switch_crash_at is not None:
        plan.switch_crash(args.switch_crash_at)
    for spec in args.packet_loss or ():
        parts = _parse_window(spec, "packet-loss", 3, 4)
        plan.packet_loss(
            float(parts[0]), float(parts[1]), float(parts[2]),
            port=parts[3] if len(parts) > 3 else None,
        )
    for spec in args.delay_spike or ():
        parts = _parse_window(spec, "delay-spike", 3, 4)
        plan.delay_spike(
            float(parts[0]), float(parts[1]), float(parts[2]),
            port=parts[3] if len(parts) > 3 else None,
        )
    for spec in args.blade_slow or ():
        parts = _parse_window(spec, "blade-slow", 3, 4)
        plan.blade_slow(
            int(parts[0]), float(parts[1]), float(parts[2]),
            factor=float(parts[3]) if len(parts) > 3 else 4.0,
        )
    for spec in args.blade_crash or ():
        parts = _parse_window(spec, "blade-crash", 3, 3)
        plan.blade_crash(int(parts[0]), float(parts[1]), float(parts[2]))
    for spec in args.cpu_stall or ():
        parts = _parse_window(spec, "cpu-stall", 2, 2)
        plan.cpu_stall(float(parts[0]), float(parts[1]))
    if not plan.events:
        return None
    return plan.validate()


def report(args: argparse.Namespace) -> int:
    fault_plan = build_fault_plan(args)
    telemetry = args.timeline or args.slo or args.open_loop is not None
    config = RunnerConfig(
        trace=True,
        trace_capacity=args.trace_capacity,
        sample_interval_us=args.sample_us,
        telemetry=telemetry,
        telemetry_window_us=args.window_us,
        arrival_process=args.open_loop,
        arrival_rate_per_thread=args.arrival_rate,
        request_size=args.request_size,
        allocator=args.allocator,
        fault_plan=fault_plan,
    )
    if fault_plan is not None:
        print("fault plan (seed %d):" % fault_plan.seed)
        for line in fault_plan.describe():
            print(f"  {line}")
        print()
    workload = UniformSharingWorkload(
        args.blades * args.threads_per_blade,
        accesses_per_thread=args.accesses,
        read_ratio=args.read_ratio,
        sharing_ratio=args.sharing_ratio,
        shared_pages=args.shared_pages,
        private_pages_per_thread=256,
        seed=args.seed,
        burst=4,
    )
    result = run_system(args.system, workload, args.blades, config)
    run_report = result.report()
    if args.json:
        print(json.dumps(run_report.to_json(), indent=2, sort_keys=True))
    else:
        print(run_report.render())
    if result.trace is None:
        if args.trace_out or args.jsonl_out:
            print(
                f"note: system {args.system!r} does not record traces; "
                "no trace files written",
                file=sys.stderr,
            )
        return 0
    if args.trace_out:
        result.trace.write_chrome_trace(
            args.trace_out, counter_series=dict(result.stats.timeseries)
        )
        print(
            f"\nwrote {len(result.trace)} trace events to {args.trace_out} "
            "(open in chrome://tracing or Perfetto)"
        )
    if args.jsonl_out:
        result.trace.write_jsonl(args.jsonl_out)
        print(f"wrote {len(result.trace)} records to {args.jsonl_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MIND reproduction: demo tour and run reports.",
    )
    sub = parser.add_subparsers(dest="command")

    tour_p = sub.add_parser("tour", help="coherent shared-memory demo (default)")
    tour_p.set_defaults(fn=tour)

    rep = sub.add_parser(
        "report", help="replay a small workload with tracing and print a report"
    )
    rep.add_argument("--system", default="mind", choices=SYSTEMS)
    rep.add_argument("--blades", type=int, default=4)
    rep.add_argument("--threads-per-blade", type=int, default=2)
    rep.add_argument("--accesses", type=int, default=1_000)
    rep.add_argument("--read-ratio", type=float, default=0.5)
    rep.add_argument("--sharing-ratio", type=float, default=0.5)
    rep.add_argument("--shared-pages", type=int, default=400)
    rep.add_argument("--seed", type=int, default=1)
    rep.add_argument(
        "--allocator",
        default=None,
        choices=sorted(ALLOC_POLICIES),
        help="model the switch allocation policy and charge its control-CPU "
        "cost (default: unmodeled first-fit; mind only)",
    )
    rep.add_argument("--sample-us", type=float, default=100.0)
    rep.add_argument("--trace-capacity", type=int, default=1 << 18)
    rep.add_argument("--json", action="store_true", help="emit the report as JSON")
    rep.add_argument("--trace-out", help="write a Chrome trace-event JSON file")
    rep.add_argument("--jsonl-out", help="write raw trace records as JSONL")
    telem = rep.add_argument_group(
        "telemetry", "windowed timelines, SLO burn rates and open-loop load"
    )
    telem.add_argument(
        "--timeline", action="store_true",
        help="record a windowed telemetry timeline and print it",
    )
    telem.add_argument(
        "--slo", action="store_true",
        help="evaluate the default SLO objectives against the timeline",
    )
    telem.add_argument(
        "--window-us", type=float, default=500.0,
        help="tumbling-window width in simulated us (default 500)",
    )
    telem.add_argument(
        "--open-loop", choices=("poisson", "diurnal"), default=None,
        help="drive threads open-loop with this arrival process instead of "
        "closed-loop replay (implies telemetry)",
    )
    telem.add_argument(
        "--arrival-rate", type=float, default=0.02,
        help="open-loop mean arrivals per thread per simulated us",
    )
    telem.add_argument(
        "--request-size", type=int, default=8,
        help="trace accesses consumed per open-loop request",
    )
    fault = rep.add_argument_group(
        "fault injection", "deterministic fault schedule (times in simulated us)"
    )
    fault.add_argument(
        "--switch-crash-at", type=float, metavar="AT",
        help="crash the primary switch at AT (arms fail-over)",
    )
    fault.add_argument(
        "--packet-loss", action="append", metavar="START:END:PROB[:PORT]",
        help="drop packets with probability PROB during [START, END)",
    )
    fault.add_argument(
        "--delay-spike", action="append", metavar="START:END:EXTRA[:PORT]",
        help="add EXTRA us propagation delay during [START, END)",
    )
    fault.add_argument(
        "--blade-slow", action="append", metavar="BLADE:START:END[:FACTOR]",
        help="memory blade serves FACTORx slower during [START, END)",
    )
    fault.add_argument(
        "--blade-crash", action="append", metavar="BLADE:START:END",
        help="memory blade answers nothing during [START, END)",
    )
    fault.add_argument(
        "--cpu-stall", action="append", metavar="AT:DURATION",
        help="wedge the switch control CPU for DURATION us at AT",
    )
    fault.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for per-packet fault randomness (default 0)",
    )
    rep.set_defaults(fn=report)

    add_sweep_parser(sub)
    add_profile_parser(sub)
    add_serve_parser(sub)
    add_multirack_parser(sub)

    parser.set_defaults(fn=tour)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
