"""Deterministic discrete-event simulation engine.

This is the substrate on which the entire MIND rack model runs.  It provides
a minimal but complete process-based discrete-event kernel:

- :class:`Engine` -- the event loop with a simulated clock (microseconds).
- :class:`Event` -- one-shot events that processes can wait on.
- :class:`Process` -- a generator-based cooperative process.  Yield a number
  to sleep for that many microseconds, an :class:`Event` to wait for it, or
  another :class:`Process` to join it.
- :class:`AllOf` -- barrier over several events (e.g. invalidation ACKs).
- :class:`Resource` -- a FIFO multi-server queue used to model queueing at
  blades, NICs, and the switch pipeline.

Determinism: ties in the event queue are broken by insertion order, and the
engine never consults wall-clock time, so a run is a pure function of its
inputs and seeds.

Fast paths (all order-preserving -- see DESIGN.md "kernel performance
model" for the argument):

- Future-time wake-ups live in a *calendar queue*: a rotating wheel of
  :data:`WHEEL_SLOTS` buckets, each covering one ``width``-microsecond
  window of simulated time.  Inserting into a future bucket is a plain
  list append (O(1)); only the bucket under the cursor is kept
  heap-ordered (heapified once when the cursor reaches it), and timers
  beyond the wheel's horizon overflow into a small heap that is drained
  as the cursor advances.  The bucket width adapts to the observed
  inter-event gap so buckets stay a few entries deep.  Total order is
  exactly the single-heap order: bucket assignment is monotone in time
  and every bucket is heap-ordered by ``(time, seq)`` before it is
  popped.  The earliest pending timer's ``(time, seq)`` is tracked in
  ``_due_head``/``_due_seq`` so fast-path guards cost one float compare.
- Zero-delay schedules (event callbacks, process starts) go to a FIFO
  *ready deque* instead of the calendar.  The run loop merges the deque
  and the calendar by the global ``(time, insertion seq)`` key, so
  execution order is exactly the order a single queue would have
  produced, while the dominant ``succeed()``-at-now traffic never pays
  any queue discipline at all.
- When a process waits on an *already-triggered* event (uncontended
  ``Resource.acquire``, joining a completed process) and no other event is
  due at the current timestamp, it resumes synchronously instead of taking
  a zero-delay trip through the scheduler.  The guard makes the fast path
  unobservable: the continuation would have been the very next event to
  execute anyway.  A bounded continuation depth
  (:data:`MAX_INLINE_CONTINUATIONS`) keeps pathological always-ready
  chains from starving the loop.  ``Resource.try_acquire`` applies the
  same guard one step earlier: an uncontended grant that would have been
  the next event anyway is taken inline, with no event object at all.
- Events created by ``Resource.acquire`` and ``Engine.timeout`` are
  recycled through a bounded freelist.  Pooled events are single-consumer
  by contract: exactly one process yields them, and their ``.value`` must
  be read through the ``yield`` expression, not off the event afterwards.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from ..obs.tracer import NULL_TRACER

#: consecutive synchronous continuations one process may take before being
#: bounced through the ready deque (guards against unbounded inline chains).
MAX_INLINE_CONTINUATIONS = 64

#: recycled events kept per engine; beyond this they fall to the GC.
EVENT_POOL_CAPACITY = 1024

#: calendar-queue geometry: a power-of-two bucket count so slot indexing is
#: a mask, wide enough that one revolution covers the near future at any
#: adapted width.
WHEEL_SLOTS = 256
WHEEL_MASK = WHEEL_SLOTS - 1

#: starting bucket width (microseconds of simulated time per bucket); the
#: engine re-derives it from the observed inter-pop gap as the run warms up.
DEFAULT_BUCKET_WIDTH_US = 2.0
MIN_BUCKET_WIDTH_US = 0.25
MAX_BUCKET_WIDTH_US = 64.0
#: timer pops between bucket-width recalibrations.
WIDTH_ADAPT_EVERY = 4096

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation kernel."""


class Event:
    """A one-shot event that carries a value once it succeeds.

    Processes wait on an event by ``yield``-ing it.  Multiple processes may
    wait on the same event; all are resumed (in wait order) when it fires.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value", "_pooled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        # The callback list materialises on first waiter: most events in a
        # run (uncontended grants, short-lived completions) never get one.
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self.triggered = False
        self.value: Any = None
        #: True while the event is owned by the engine's freelist discipline
        #: (created by ``Resource.acquire`` / ``Engine.timeout``).  Pooled
        #: events are single-consumer: one process yields them once.
        self._pooled = False

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, resuming all waiters at the current sim time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            engine = self.engine
            now = engine.now
            append = engine._ready.append
            for cb in callbacks:
                engine._counter += 1
                append((now, engine._counter, cb, (self,)))
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.engine._schedule_now(cb, (self,))
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)


class AllOf(Event):
    """An event that fires once all constituent events have fired.

    The value is the list of constituent values, in constituent order.  An
    empty constituent list fires immediately (useful for "wait for all ACKs"
    when there happen to be zero sharers).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
        else:
            for ev in self._events:
                ev.add_callback(self._child_fired)

    def _child_fired(self, _ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])


class Process(Event):
    """A cooperative process driven by a generator.

    The process itself is an :class:`Event` that fires (with the generator's
    return value) when the generator finishes, so processes can be joined by
    yielding them.
    """

    __slots__ = ("_gen", "_name", "_seq", "_t_start")

    def __init__(self, engine: "Engine", gen: Generator, name: Optional[str] = None):
        super().__init__(engine)
        self._gen = gen
        self._name = name
        self._seq = engine._processes_started
        # Cheap unconditional snapshot: the tracer is resolved at completion
        # time, so processes started before a cluster installs its tracer
        # still emit completion spans.
        self._t_start = engine.now
        engine._schedule_now(self._resume, (None,))

    @property
    def name(self) -> str:
        return self._name or f"proc-{self._seq}"

    def _resume(self, _wake: Any) -> None:
        engine = self.engine
        send = self._gen.send
        ready = engine._ready
        limit = engine._until
        if _wake is None:
            value = None
        else:
            # Pooled events are single-consumer (the value is read here,
            # the object is never retained), so a wake-up that arrived via
            # the scheduler can recycle exactly like the inline path does.
            value = _wake.value
            if _wake._pooled:
                engine._recycle(_wake)
        inline_budget = MAX_INLINE_CONTINUATIONS
        while True:
            try:
                target = send(value)
            except StopIteration as stop:
                tracer = engine.tracer
                if tracer.enabled:
                    tracer.complete(
                        self._t_start,
                        engine.now - self._t_start,
                        "engine",
                        self.name,
                        track=tracer.track("processes"),
                    )
                self.succeed(stop.value)
                return
            # The exact-type check dodges isinstance's subclass walk for the
            # overwhelmingly common plain-float delay; events and the rare
            # int/numpy delays take the isinstance fallbacks below.
            if type(target) is not float:
                if isinstance(target, Event):
                    if (
                        target.triggered
                        and inline_budget > 0
                        and not ready
                        and engine._due_head > engine.now
                    ):
                        # Synchronous continuation: the scheduled wake-up
                        # would have been the next event executed, so running
                        # it now is unobservable -- and skips a scheduler
                        # round-trip.
                        inline_budget -= 1
                        engine.inline_continuations += 1
                        value = target.value
                        if target._pooled:
                            engine._recycle(target)
                        continue
                    target.add_callback(self._resume)
                    return
                if not isinstance(target, (int, float)):
                    raise SimulationError(
                        f"process yielded unsupported value: {target!r}"
                    )
                target = float(target)
            if target > 0.0:
                wake = engine.now + target
                if (
                    inline_budget > 0
                    and not ready
                    and engine._due_head > wake
                    and (limit is None or wake <= limit)
                ):
                    # Inline clock advance: the wake-up at ``wake`` would be
                    # the globally next event (the ready deque is empty and
                    # every pending timer is strictly later), so advancing
                    # the clock and continuing here is unobservable -- the
                    # event set and all timestamps are exactly the queue
                    # path's.
                    inline_budget -= 1
                    engine.inline_clock_advances += 1
                    engine.now = wake
                    value = None
                    continue
                engine._push_timer(wake, self._resume, (None,))
                return
            if target < 0.0:
                raise SimulationError(f"negative timeout: {target!r}")
            if (
                inline_budget > 0
                and not ready
                and engine._due_head > engine.now
            ):
                inline_budget -= 1
                engine.inline_continuations += 1
                value = None
                continue
            engine._schedule_now(self._resume, (None,))
            return


class Engine:
    """The discrete-event loop.

    Time is a float in *microseconds*.  All state mutation happens inside
    scheduled callbacks, which are executed in (time, insertion order).
    """

    #: emit a scheduler-activity trace counter once per this many executed
    #: events (only when tracing is enabled).
    TRACE_EVERY = 1024

    def __init__(self) -> None:
        self.now: float = 0.0
        #: zero-delay entries, FIFO in insertion order; merged with the
        #: calendar by (time, seq) so the execution order matches a single
        #: queue.
        self._ready: deque = deque()
        self._counter = 0
        #: time limit of the innermost ``run(until=...)``; the inline
        #: clock-advance fast path must never step past it, because the
        #: slow path leaves later wake-ups parked in the calendar.
        self._until: Optional[float] = None
        self._processes_started = 0
        # -- calendar queue (future-time wake-ups) ----------------------
        #: rotating buckets; plain unsorted lists except the bucket under
        #: the cursor, which is heap-ordered by (time, seq).
        self._wheel: List[List] = [[] for _ in range(WHEEL_SLOTS)]
        #: entries currently resident in the wheel (not the overflow heap).
        self._wheel_count = 0
        #: global bucket number of the cursor; slot index is epoch & MASK.
        self._epoch = 0
        #: simulated microseconds of time each bucket covers.
        self._width = DEFAULT_BUCKET_WIDTH_US
        #: first timestamp past the wheel's horizon; entries at or beyond
        #: it go to the overflow heap.
        self._wheel_limit = WHEEL_SLOTS * DEFAULT_BUCKET_WIDTH_US
        #: far-future timers, heap-ordered; drained as the cursor advances.
        self._overflow: List = []
        #: (time, seq) of the earliest pending timer (+inf when none) --
        #: the one-compare guard every fast path checks.
        self._due_head: float = _INF
        self._due_seq = 0
        #: timer pops since engine start / since the last width adaptation.
        self._timer_pops = 0
        self._adapt_pops = 0
        self._adapt_now = 0.0
        # -- kernel counters --------------------------------------------
        self.events_executed = 0
        #: waits short-circuited by the synchronous-continuation fast path
        #: (each one is a scheduler round-trip that never happened).
        self.inline_continuations = 0
        #: positive-delay waits absorbed by advancing the clock in place:
        #: the wake-up was provably the globally next event, so the queue
        #: round-trip is skipped and ``now`` is set directly.
        self.inline_clock_advances = 0
        #: spawn-and-join children run as plain nested generators because
        #: nothing else was due at the instant they started (see subtask).
        self.subtasks_fused = 0
        #: cursor advances across calendar buckets (including horizon jumps).
        self.calendar_rotations = 0
        #: wheel rebuilds triggered by bucket-width adaptation.
        self.calendar_rebuilds = 0
        #: cache-hit runs retired in one batch by the vectorized replay
        #: path (see ComputeBlade.run_thread); counted here so the perf
        #: harness sees all kernel-side fast paths in one place.
        self.batched_retires = 0
        #: recycled Events (Resource.acquire / timeout) awaiting reuse.
        self._event_pool: List[Event] = []
        #: the observability sink; NULL_TRACER unless a cluster installs one.
        self.tracer = NULL_TRACER
        #: named resources register here so run reports can rank queueing
        #: hotspots; anonymous resources (e.g. transient region locks) do
        #: not, keeping the registry bounded and deterministic.
        self.resources: List["Resource"] = []

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time."""
        if delay <= 0:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            self._counter += 1
            self._ready.append((self.now, self._counter, fn, args))
            return
        self._push_timer(self.now + delay, fn, args)

    def _schedule_now(self, fn: Callable, args: tuple) -> None:
        """Zero-delay schedule on the ready deque (internal hot path)."""
        self._counter += 1
        self._ready.append((self.now, self._counter, fn, args))

    def _push_timer(self, wake: float, fn: Callable, args: tuple) -> None:
        """Insert a future-time entry into the calendar (internal hot path).

        Bucket assignment is monotone in ``wake`` (one float divide), so
        popping buckets in cursor order after heapifying each preserves the
        exact (time, seq) total order of a single heap.
        """
        self._counter += 1
        entry = (wake, self._counter, fn, args)
        if wake >= self._wheel_limit:
            # Beyond the horizon (or +inf): park in the overflow heap; the
            # cursor drains it as it sweeps forward.
            heapq.heappush(self._overflow, entry)
        else:
            epoch = self._epoch
            bucket = int(wake / self._width)
            if bucket <= epoch:
                # At (or, after an inline clock advance, behind) the cursor
                # bucket: keep that bucket heap-ordered.
                heapq.heappush(self._wheel[epoch & WHEEL_MASK], entry)
            else:
                self._wheel[bucket & WHEEL_MASK].append(entry)
            self._wheel_count += 1
        if wake < self._due_head:
            self._due_head = wake
            self._due_seq = self._counter

    def _refill_cursor(self) -> Optional[List]:
        """Advance the cursor to the next non-empty bucket and heapify it.

        Pulls overflow entries due within each swept bucket's window along
        the way, and jumps straight to the overflow head's bucket when the
        wheel is empty (so sparse phases never pay an O(gap) scan).
        Returns the new cursor bucket, or None when no timers remain.
        Precondition: the current cursor bucket is empty.
        """
        if self._timer_pops - self._adapt_pops >= WIDTH_ADAPT_EVERY:
            self._maybe_resize()
        wheel = self._wheel
        overflow = self._overflow
        width = self._width
        epoch = self._epoch
        count = self._wheel_count
        if not count:
            if not overflow:
                return None
            jump = int(overflow[0][0] / width) - 1
            if jump > epoch:
                epoch = jump
        rotations = 0
        heappop = heapq.heappop
        while True:
            epoch += 1
            rotations += 1
            cur = wheel[epoch & WHEEL_MASK]
            boundary = (epoch + 1) * width
            while overflow and overflow[0][0] < boundary:
                cur.append(heappop(overflow))
                count += 1
            if cur:
                break
        heapq.heapify(cur)
        self._epoch = epoch
        self._wheel_count = count
        self._wheel_limit = (epoch + WHEEL_SLOTS) * width
        self.calendar_rotations += rotations
        return cur

    def _timer_pop(self):
        """Pop the earliest timer entry; maintains ``_due_head``/``_due_seq``.

        Precondition: at least one timer is pending (``_due_head < inf``).
        """
        cur = self._wheel[self._epoch & WHEEL_MASK]
        if not cur:
            cur = self._refill_cursor()
        entry = heapq.heappop(cur)
        self._wheel_count -= 1
        self._timer_pops += 1
        if not cur:
            cur = self._refill_cursor()
        if cur:
            head = cur[0]
            self._due_head = head[0]
            self._due_seq = head[1]
        else:
            self._due_head = _INF
            self._due_seq = 0
        return entry

    def _maybe_resize(self) -> None:
        """Re-derive the bucket width from the observed inter-pop gap.

        Aims for a few entries per bucket; widths snap to powers of two so
        jitter in the gap estimate cannot thrash the wheel.  A rebuild dumps
        every wheel entry into the overflow heap and re-anchors the cursor
        at the current clock -- the entry set and its total order are
        untouched, so this is invisible to the simulation.
        """
        pops = self._timer_pops
        delta = pops - self._adapt_pops
        span = self.now - self._adapt_now
        self._adapt_pops = pops
        self._adapt_now = self.now
        if span <= 0.0 or delta <= 0:
            return
        target = (span / delta) * 4.0
        if target < MIN_BUCKET_WIDTH_US:
            target = MIN_BUCKET_WIDTH_US
        elif target > MAX_BUCKET_WIDTH_US:
            target = MAX_BUCKET_WIDTH_US
        new_width = 2.0 ** round(math.log2(target))
        if new_width < MIN_BUCKET_WIDTH_US:
            new_width = MIN_BUCKET_WIDTH_US
        elif new_width > MAX_BUCKET_WIDTH_US:
            new_width = MAX_BUCKET_WIDTH_US
        if new_width == self._width:
            return
        overflow = self._overflow
        for bucket in self._wheel:
            if bucket:
                for entry in bucket:
                    heapq.heappush(overflow, entry)
                del bucket[:]
        self._wheel_count = 0
        self._width = new_width
        self._epoch = int(self.now / new_width)
        self._wheel_limit = (self._epoch + WHEEL_SLOTS) * new_width
        self.calendar_rebuilds += 1

    def pending_timer_count(self) -> int:
        """Future-time entries currently parked (wheel + overflow)."""
        return self._wheel_count + len(self._overflow)

    def _pooled_event(self) -> Event:
        """A recycled (or fresh) single-consumer event."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
        else:
            ev = Event(self)
        ev._pooled = True
        return ev

    def _recycle(self, ev: Event) -> None:
        """Return a pooled event to the freelist (resets one-shot state)."""
        ev._pooled = False
        if len(self._event_pool) < EVENT_POOL_CAPACITY:
            ev.triggered = False
            ev.value = None
            ev._callbacks = None
            self._event_pool.append(ev)

    def kernel_stats(self) -> Dict[str, int]:
        """Scheduler-side counters for the profiling harness.

        These describe the *kernel's* work (events dispatched, fast-path
        hits), not the simulated system, and are deliberately kept out of
        sweep metrics: fast-path changes shift them without changing any
        simulated result, and sweep documents must stay byte-comparable
        across kernel versions.
        """
        return {
            "events_executed": self.events_executed,
            "processes_started": self._processes_started,
            "inline_continuations": self.inline_continuations,
            "inline_clock_advances": self.inline_clock_advances,
            "subtasks_fused": self.subtasks_fused,
            "calendar_rotations": self.calendar_rotations,
            "calendar_rebuilds": self.calendar_rebuilds,
            "batched_retires": self.batched_retires,
        }

    def event(self) -> Event:
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        self._processes_started += 1
        return Process(self, gen, name)

    def subtask(self, gen: Generator) -> Generator:
        """Spawn-and-join a child generator: ``result = yield from
        engine.subtask(gen)`` is semantically ``yield engine.process(gen)``.

        When nothing else is due at the current instant (the same condition
        that makes synchronous continuations unobservable) and tracing is
        off, the child generator itself is returned and the caller's
        ``yield from`` drives it directly -- no Process allocation, no
        scheduler round-trips, no completion-event machinery, not even a
        wrapper frame.  The side-effect order is exactly what dispatching
        the child's start next would have produced.  Any other time -- or
        whenever the tracer is on, so per-process spans and names stay
        stable -- it falls back to a real spawn-and-join process.
        """
        if (
            not self._ready
            and not self.tracer.enabled
            and self._due_head > self.now
        ):
            self.subtasks_fused += 1
            return gen
        return self._spawn_join(gen)

    def _spawn_join(self, gen: Generator) -> Generator:
        return (yield self.process(gen))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` microseconds.

        The event is recycled through the engine's freelist once the single
        process waiting on it resumes: read its value from the ``yield``
        expression, not from the event object afterwards, and do not share
        one timeout event between several waiters.
        """
        ev = self._pooled_event()
        self.schedule(delay, ev.succeed, value)
        return ev

    # -- execution -----------------------------------------------------

    def _next_entry(self):
        """Pop the globally next (time, seq) entry from deque + calendar."""
        ready = self._ready
        if ready:
            due = self._due_head
            first = ready[0]
            if due < first[0] or (due == first[0] and self._due_seq < first[1]):
                return self._timer_pop()
            return ready.popleft()
        if self._due_head != _INF:
            return self._timer_pop()
        return None

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches ``until``.

        Returns the final simulated time.
        """
        if self.tracer.enabled:
            return self._run_traced(until)
        # Untraced loop: no tracer branches on the hot path.
        self._until = until
        try:
            return self._run_loop(self._ready, 0, until)
        finally:
            self._until = None

    def _run_loop(
        self,
        ready: deque,
        executed: int,
        until: Optional[float],
    ) -> float:
        while True:
            if ready:
                due = self._due_head
                first = ready[0]
                if due < first[0] or (
                    due == first[0] and self._due_seq < first[1]
                ):
                    entry = self._timer_pop()
                else:
                    entry = ready.popleft()
            elif self._due_head != _INF:
                if until is not None and self._due_head > until:
                    break
                entry = self._timer_pop()
            else:
                self.events_executed += executed
                return self.now
            self.now = entry[0]
            entry[2](*entry[3])
            executed += 1
        self.events_executed += executed
        self.now = until
        return self.now

    def _run_traced(self, until: Optional[float] = None) -> float:
        self._until = until
        try:
            return self._run_traced_loop(until)
        finally:
            self._until = None

    def _run_traced_loop(self, until: Optional[float]) -> float:
        tracer = self.tracer
        while True:
            if (
                not self._ready
                and self._due_head != _INF
                and until is not None
                and self._due_head > until
            ):
                self.now = until
                return self.now
            entry = self._next_entry()
            if entry is None:
                return self.now
            self.now = entry[0]
            entry[2](*entry[3])
            self.events_executed += 1
            if self.events_executed % self.TRACE_EVERY == 0:
                tracer.counter(
                    self.now, "engine", "event_queue_depth",
                    self.pending_timer_count() + len(self._ready),
                )

    def run_until_complete(self, ev: Event) -> Any:
        """Run until ``ev`` fires; returns its value.

        Unlike :meth:`run`, this stops as soon as the awaited event fires,
        so it works with perpetual background processes (epoch loops) still
        scheduled.  Raises if the queue drains without the event firing
        (a deadlock).
        """
        if self.tracer.enabled:
            return self._run_until_complete_traced(ev)
        ready = self._ready
        executed = 0
        while not ev.triggered:
            if ready:
                due = self._due_head
                first = ready[0]
                if due < first[0] or (
                    due == first[0] and self._due_seq < first[1]
                ):
                    entry = self._timer_pop()
                else:
                    entry = ready.popleft()
            elif self._due_head != _INF:
                entry = self._timer_pop()
            else:
                break
            self.now = entry[0]
            entry[2](*entry[3])
            executed += 1
        self.events_executed += executed
        if not ev.triggered:
            raise SimulationError("event never fired: simulation deadlocked")
        return ev.value

    def _run_until_complete_traced(self, ev: Event) -> Any:
        tracer = self.tracer
        while not ev.triggered:
            entry = self._next_entry()
            if entry is None:
                break
            self.now = entry[0]
            entry[2](*entry[3])
            self.events_executed += 1
            if self.events_executed % self.TRACE_EVERY == 0:
                tracer.counter(
                    self.now, "engine", "event_queue_depth",
                    self.pending_timer_count() + len(self._ready),
                )
        if not ev.triggered:
            raise SimulationError("event never fired: simulation deadlocked")
        return ev.value

    def run_process(self, gen: Generator, name: Optional[str] = None) -> Any:
        """Convenience: start a process, run until it completes, return its
        value.  Background processes keep their pending events queued."""
        proc = self.process(gen, name)
        return self.run_until_complete(proc)


class Resource:
    """A FIFO multi-server resource for modelling queueing delays.

    ``capacity`` servers; excess requests queue in arrival order.  Usage::

        token = yield resource.acquire()
        try:
            yield service_time
        finally:
            resource.release()

    The acquire event's value is the queueing delay experienced, which the
    caller may record (e.g. invalidation queueing in Fig. 7 right).  Read
    it from the ``yield`` expression: acquire events are recycled through
    the engine's freelist once the acquiring process resumes, so the event
    object must not be consulted (or waited on by a second process) after
    the grant.

    Naming a resource registers it with the engine so run reports can rank
    queueing hotspots by accumulated wait time; anonymous resources stay
    unregistered (transient locks would bloat the registry).
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_in_use",
        "_waiters",
        "busy_time",
        "_last_change",
        "total_wait_us",
        "waits",
        "grants",
    )

    def __init__(self, engine: Engine, capacity: int = 1, name: Optional[str] = None):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque = deque()
        self.busy_time = 0.0
        self._last_change = 0.0
        #: accumulated queueing delay across all granted acquisitions.
        self.total_wait_us = 0.0
        #: acquisitions that had to queue / total acquisitions granted.
        self.waits = 0
        self.grants = 0
        if name is not None:
            engine.resources.append(self)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def in_use(self) -> int:
        return self._in_use

    def _account(self) -> None:
        now = self.engine.now
        if now != self._last_change:
            self.busy_time += self._in_use * (now - self._last_change)
            self._last_change = now

    def try_acquire(self) -> bool:
        """Inline uncontended grant; True iff the caller now holds a server.

        Semantically ``(yield self.acquire()) == 0.0`` with identical
        accounting, minus the event object and the scheduler round trip.
        Only takes effect when the grant is provably unobservable: the
        resource has a free server *and* nothing else is due at the current
        instant, so the acquiring process would have been resumed next
        anyway (the same guard the synchronous-continuation path uses).  On
        False the caller must fall back to ``yield self.acquire()``.
        """
        if self._in_use >= self.capacity:
            return False
        engine = self.engine
        if engine._ready or engine._due_head <= engine.now:
            return False
        now = engine.now
        if now != self._last_change:  # _account(), inlined on the hot path
            self.busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
        self._in_use += 1
        self.grants += 1
        return True

    def acquire(self) -> Event:
        engine = self.engine
        ev = engine._pooled_event()
        now = engine.now
        if now != self._last_change:  # _account(), inlined on the hot path
            self.busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
        if self._in_use < self.capacity:
            self._in_use += 1
            self.grants += 1
            ev.triggered = True
            ev.value = 0.0
        else:
            self._waiters.append((engine.now, ev))
            if self.name is not None and engine.tracer.enabled:
                tracer = engine.tracer
                tracer.counter(
                    engine.now,
                    "resource",
                    f"{self.name}.queue",
                    len(self._waiters),
                    track=tracer.track("resources"),
                )
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        now = self.engine.now
        if now != self._last_change:  # _account(), inlined on the hot path
            self.busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
        if self._waiters:
            arrived, ev = self._waiters.popleft()
            wait = self.engine.now - arrived
            self.total_wait_us += wait
            self.waits += 1
            self.grants += 1
            if self.name is not None and self.engine.tracer.enabled:
                tracer = self.engine.tracer
                tracer.complete(
                    arrived,
                    wait,
                    "resource",
                    f"{self.name}.wait",
                    track=tracer.track("resources"),
                )
            ev.succeed(wait)
        else:
            self._in_use -= 1

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since engine start."""
        self._account()
        if self.engine.now <= 0:
            return 0.0
        return self.busy_time / (self.engine.now * self.capacity)

    def busy_integral(self) -> float:
        """Capacity-time integral of use so far (advances accounting first).

        Dividing by ``horizon * capacity`` reproduces :meth:`utilization`
        against an arbitrary horizon -- the parallel multirack merge needs
        this to evaluate utilization against the *global* makespan rather
        than one worker engine's local clock.
        """
        self._account()
        return self.busy_time
