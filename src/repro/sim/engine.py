"""Deterministic discrete-event simulation engine.

This is the substrate on which the entire MIND rack model runs.  It provides
a minimal but complete process-based discrete-event kernel:

- :class:`Engine` -- the event loop with a simulated clock (microseconds).
- :class:`Event` -- one-shot events that processes can wait on.
- :class:`Process` -- a generator-based cooperative process.  Yield a number
  to sleep for that many microseconds, an :class:`Event` to wait for it, or
  another :class:`Process` to join it.
- :class:`AllOf` -- barrier over several events (e.g. invalidation ACKs).
- :class:`Resource` -- a FIFO multi-server queue used to model queueing at
  blades, NICs, and the switch pipeline.

Determinism: ties in the event queue are broken by insertion order, and the
engine never consults wall-clock time, so a run is a pure function of its
inputs and seeds.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..obs.tracer import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation kernel."""


class Event:
    """A one-shot event that carries a value once it succeeds.

    Processes wait on an event by ``yield``-ing it.  Multiple processes may
    wait on the same event; all are resumed (in wait order) when it fires.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, resuming all waiters at the current sim time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.engine.schedule(0.0, cb, self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.engine.schedule(0.0, cb, self)
        else:
            self._callbacks.append(cb)


class AllOf(Event):
    """An event that fires once all constituent events have fired.

    The value is the list of constituent values, in constituent order.  An
    empty constituent list fires immediately (useful for "wait for all ACKs"
    when there happen to be zero sharers).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
        else:
            for ev in self._events:
                ev.add_callback(self._child_fired)

    def _child_fired(self, _ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])


class Process(Event):
    """A cooperative process driven by a generator.

    The process itself is an :class:`Event` that fires (with the generator's
    return value) when the generator finishes, so processes can be joined by
    yielding them.
    """

    __slots__ = ("_gen", "name", "_t_start")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "proc"):
        super().__init__(engine)
        self._gen = gen
        self.name = name
        self._t_start = engine.now if engine.tracer.enabled else None
        engine.schedule(0.0, self._resume, None)

    def _resume(self, _wake: Any) -> None:
        value = _wake.value if isinstance(_wake, Event) else None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            tracer = self.engine.tracer
            if tracer.enabled and self._t_start is not None:
                tracer.complete(
                    self._t_start,
                    self.engine.now - self._t_start,
                    "engine",
                    self.name,
                    track=tracer.track("processes"),
                )
            self.succeed(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Event):
            target.add_callback(self._resume)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(f"negative timeout: {target!r}")
            self.engine.schedule(float(target), self._resume, None)
        else:
            raise SimulationError(f"process yielded unsupported value: {target!r}")


class Engine:
    """The discrete-event loop.

    Time is a float in *microseconds*.  All state mutation happens inside
    scheduled callbacks, which are executed in (time, insertion order).
    """

    #: emit a scheduler-activity trace counter once per this many executed
    #: events (only when tracing is enabled).
    TRACE_EVERY = 1024

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._counter = 0
        self._processes_started = 0
        self.events_executed = 0
        #: the observability sink; NULL_TRACER unless a cluster installs one.
        self.tracer = NULL_TRACER
        #: named resources register here so run reports can rank queueing
        #: hotspots; anonymous resources (e.g. transient region locks) do
        #: not, keeping the registry bounded and deterministic.
        self.resources: List["Resource"] = []

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._counter += 1
        heapq.heappush(self._queue, (self.now + delay, self._counter, fn, args))

    def event(self) -> Event:
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        self._processes_started += 1
        return Process(self, gen, name or f"proc-{self._processes_started}")

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` microseconds."""
        ev = Event(self)
        self.schedule(delay, ev.succeed, value)
        return ev

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches ``until``.

        Returns the final simulated time.
        """
        tracer = self.tracer
        while self._queue:
            t, _seq, fn, args = self._queue[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = t
            fn(*args)
            self.events_executed += 1
            if tracer.enabled and self.events_executed % self.TRACE_EVERY == 0:
                tracer.counter(
                    self.now, "engine", "event_queue_depth", len(self._queue)
                )
        return self.now

    def run_until_complete(self, ev: Event) -> Any:
        """Run until ``ev`` fires; returns its value.

        Unlike :meth:`run`, this stops as soon as the awaited event fires,
        so it works with perpetual background processes (epoch loops) still
        scheduled.  Raises if the queue drains without the event firing
        (a deadlock).
        """
        tracer = self.tracer
        while self._queue and not ev.triggered:
            t, _seq, fn, args = heapq.heappop(self._queue)
            self.now = t
            fn(*args)
            self.events_executed += 1
            if tracer.enabled and self.events_executed % self.TRACE_EVERY == 0:
                tracer.counter(
                    self.now, "engine", "event_queue_depth", len(self._queue)
                )
        if not ev.triggered:
            raise SimulationError("event never fired: simulation deadlocked")
        return ev.value

    def run_process(self, gen: Generator, name: Optional[str] = None) -> Any:
        """Convenience: start a process, run until it completes, return its
        value.  Background processes keep their pending events queued."""
        proc = self.process(gen, name)
        return self.run_until_complete(proc)


class Resource:
    """A FIFO multi-server resource for modelling queueing delays.

    ``capacity`` servers; excess requests queue in arrival order.  Usage::

        token = yield resource.acquire()
        try:
            yield service_time
        finally:
            resource.release()

    The acquire event's value is the queueing delay experienced, which the
    caller may record (e.g. invalidation queueing in Fig. 7 right).

    Naming a resource registers it with the engine so run reports can rank
    queueing hotspots by accumulated wait time; anonymous resources stay
    unregistered (transient locks would bloat the registry).
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_in_use",
        "_waiters",
        "busy_time",
        "_last_change",
        "total_wait_us",
        "waits",
        "grants",
    )

    def __init__(self, engine: Engine, capacity: int = 1, name: Optional[str] = None):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque = deque()
        self.busy_time = 0.0
        self._last_change = 0.0
        #: accumulated queueing delay across all granted acquisitions.
        self.total_wait_us = 0.0
        #: acquisitions that had to queue / total acquisitions granted.
        self.waits = 0
        self.grants = 0
        if name is not None:
            engine.resources.append(self)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def in_use(self) -> int:
        return self._in_use

    def _account(self) -> None:
        now = self.engine.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def acquire(self) -> Event:
        ev = Event(self.engine)
        self._account()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.grants += 1
            ev.succeed(0.0)
        else:
            self._waiters.append((self.engine.now, ev))
            tracer = self.engine.tracer
            if tracer.enabled and self.name is not None:
                tracer.counter(
                    self.engine.now,
                    "resource",
                    f"{self.name}.queue",
                    len(self._waiters),
                    track=tracer.track("resources"),
                )
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        self._account()
        if self._waiters:
            arrived, ev = self._waiters.popleft()
            wait = self.engine.now - arrived
            self.total_wait_us += wait
            self.waits += 1
            self.grants += 1
            tracer = self.engine.tracer
            if tracer.enabled and self.name is not None:
                tracer.complete(
                    arrived,
                    wait,
                    "resource",
                    f"{self.name}.wait",
                    track=tracer.track("resources"),
                )
            ev.succeed(wait)
        else:
            self._in_use -= 1

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since engine start."""
        self._account()
        if self.engine.now <= 0:
            return 0.0
        return self.busy_time / (self.engine.now * self.capacity)
