"""One-sided RDMA verb model.

MIND's data path is built on one-sided RDMA READ/WRITE: compute blades post
verbs against *virtual* addresses, the switch rewrites headers to the right
memory blade, and the memory blade's NIC serves the access with **zero CPU
involvement** (Section 3.2 / 6.2 of the paper).  This module models the verb
cost structure; the switch traversal itself is composed by the data-path
code so that the switch pipeline model stays in one place.

A verb completion here means the payload landed in the registered receive
buffer and the completion queue was polled -- i.e. the point at which the
page-fault handler can populate PTEs and return to the user.

Reliability (Section 4.4): RDMA is lossy under injected faults, so the verb
layer carries timeout/retransmission machinery.  :class:`BackoffPolicy`
defines a deterministic exponential-backoff schedule (optionally jittered
from a seeded generator); the reliable verbs retransmit lost transfers on
that schedule and raise a typed :class:`RdmaTimeoutError` once the retry
budget is exhausted, so a lost transfer is retried -- never silently hung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from .engine import Engine
from .network import CONTROL_MSG_BYTES, Network, NetworkConfig, Port


class RdmaTimeoutError(RuntimeError):
    """A reliable verb exhausted its retransmission budget."""

    def __init__(self, verb: str, attempts: int):
        super().__init__(f"rdma {verb} timed out after {attempts} attempts")
        self.verb = verb
        self.attempts = attempts


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential-backoff retransmission schedule.

    ``timeout_us(k)`` is the wait after the k-th failed attempt:
    ``base_timeout_us * multiplier**k`` capped at ``max_timeout_us``, with
    optional multiplicative jitter drawn from a caller-supplied seeded rng
    (same seed -> byte-identical schedule).  ``max_retries`` bounds the
    retransmissions; attempt count is therefore ``max_retries + 1``.
    """

    base_timeout_us: float = 50.0
    multiplier: float = 2.0
    max_retries: int = 5
    max_timeout_us: float = 1_600.0
    jitter_frac: float = 0.0

    def timeout_us(self, attempt: int, rng=None) -> float:
        timeout = min(
            self.base_timeout_us * self.multiplier ** attempt, self.max_timeout_us
        )
        if self.jitter_frac and rng is not None:
            timeout *= 1.0 + self.jitter_frac * float(rng.random())
        return timeout

    def schedule(self, rng=None) -> List[float]:
        """The full wait schedule (one entry per allowed retransmission)."""
        return [self.timeout_us(k, rng) for k in range(self.max_retries)]


class RdmaQp:
    """A (virtualized) queue pair between a compute blade and "the memory".

    The compute blade does not know which memory blade it is talking to; the
    switch virtualizes the connection (Section 6.3).  The QP therefore only
    references the local port; destination resolution happens in-network.
    """

    def __init__(
        self,
        engine: Engine,
        network: Network,
        local_port: Port,
        backoff: Optional[BackoffPolicy] = None,
        rng=None,
    ):
        self.engine = engine
        self.network = network
        self.config: NetworkConfig = network.config
        self.local_port = local_port
        self.backoff = backoff or BackoffPolicy()
        self._rng = rng
        self.reads_posted = 0
        self.writes_posted = 0
        self.retransmissions = 0
        self.timeouts = 0

    # The verbs below are *segments* of a full transaction: the switch-side
    # code stitches request segments, pipeline passes and response segments
    # together.  Each returns a process generator.

    def post_request(self, size_bytes: int = CONTROL_MSG_BYTES) -> Generator:
        """Requester -> switch: verb post overhead + uplink transfer."""
        yield self.config.rdma_verb_overhead_us
        yield from self.engine.subtask(self.local_port.to_switch.transfer(size_bytes))

    def receive_response(self, size_bytes: int) -> Generator:
        """Switch -> requester: downlink transfer + completion polling."""
        yield from self.engine.subtask(self.local_port.from_switch.transfer(size_bytes))
        yield self.config.rdma_verb_overhead_us

    # -- reliable verbs (timeout + exponential-backoff retransmission) ----

    def reliable_post(self, size_bytes: int = CONTROL_MSG_BYTES) -> Generator:
        """Requester -> switch with retransmission.

        Use via ``yield from``.  Returns the number of retransmissions the
        transfer needed (0 when the first attempt lands).  Raises
        :class:`RdmaTimeoutError` once the backoff budget is exhausted --
        the caller sees a typed failure instead of a hung completion queue.
        """
        return (yield from self._reliable(self.local_port.to_switch, size_bytes, "post"))

    def reliable_receive(self, size_bytes: int) -> Generator:
        """Switch -> requester with retransmission (see reliable_post)."""
        return (
            yield from self._reliable(self.local_port.from_switch, size_bytes, "receive")
        )

    def _reliable(self, link, size_bytes: int, verb: str) -> Generator:
        attempts = self.backoff.max_retries + 1
        for attempt in range(attempts):
            yield self.config.rdma_verb_overhead_us
            delivered = yield from self.engine.subtask(link.transfer(size_bytes))
            if delivered:
                return attempt
            if attempt < self.backoff.max_retries:
                self.retransmissions += 1
                yield self.backoff.timeout_us(attempt, self._rng)
        self.timeouts += 1
        raise RdmaTimeoutError(verb, attempts)


def one_sided_read(
    engine: Engine,
    config: NetworkConfig,
    memory_port: Port,
    size_bytes: int,
) -> Generator:
    """Switch -> memory blade -> switch leg of a one-sided READ.

    The memory blade NIC DMA-reads ``size_bytes`` from host DRAM and streams
    it back.  No memory-blade CPU is involved, so the only costs are the NIC
    service time, DRAM, and the wire.
    """
    yield from engine.subtask(memory_port.from_switch.transfer(CONTROL_MSG_BYTES))
    yield config.memory_service_us + config.dram_access_us
    yield from engine.subtask(memory_port.to_switch.transfer(size_bytes))


def one_sided_write(
    engine: Engine,
    config: NetworkConfig,
    memory_port: Port,
    size_bytes: int,
) -> Generator:
    """Switch -> memory blade leg of a one-sided WRITE (page flush).

    Completion is the memory blade NIC's ACK arriving back at the switch.
    """
    yield from engine.subtask(memory_port.from_switch.transfer(size_bytes))
    yield config.memory_service_us + config.dram_access_us
    yield from engine.subtask(memory_port.to_switch.transfer(CONTROL_MSG_BYTES))
