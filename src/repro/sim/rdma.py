"""One-sided RDMA verb model.

MIND's data path is built on one-sided RDMA READ/WRITE: compute blades post
verbs against *virtual* addresses, the switch rewrites headers to the right
memory blade, and the memory blade's NIC serves the access with **zero CPU
involvement** (Section 3.2 / 6.2 of the paper).  This module models the verb
cost structure; the switch traversal itself is composed by the data-path
code so that the switch pipeline model stays in one place.

A verb completion here means the payload landed in the registered receive
buffer and the completion queue was polled -- i.e. the point at which the
page-fault handler can populate PTEs and return to the user.
"""

from __future__ import annotations

from typing import Generator

from .engine import Engine
from .network import CONTROL_MSG_BYTES, Network, NetworkConfig, Port


class RdmaQp:
    """A (virtualized) queue pair between a compute blade and "the memory".

    The compute blade does not know which memory blade it is talking to; the
    switch virtualizes the connection (Section 6.3).  The QP therefore only
    references the local port; destination resolution happens in-network.
    """

    def __init__(self, engine: Engine, network: Network, local_port: Port):
        self.engine = engine
        self.network = network
        self.config: NetworkConfig = network.config
        self.local_port = local_port
        self.reads_posted = 0
        self.writes_posted = 0

    # The verbs below are *segments* of a full transaction: the switch-side
    # code stitches request segments, pipeline passes and response segments
    # together.  Each returns a process generator.

    def post_request(self, size_bytes: int = CONTROL_MSG_BYTES) -> Generator:
        """Requester -> switch: verb post overhead + uplink transfer."""
        yield self.config.rdma_verb_overhead_us
        yield self.engine.process(self.local_port.to_switch.transfer(size_bytes))

    def receive_response(self, size_bytes: int) -> Generator:
        """Switch -> requester: downlink transfer + completion polling."""
        yield self.engine.process(self.local_port.from_switch.transfer(size_bytes))
        yield self.config.rdma_verb_overhead_us


def one_sided_read(
    engine: Engine,
    config: NetworkConfig,
    memory_port: Port,
    size_bytes: int,
) -> Generator:
    """Switch -> memory blade -> switch leg of a one-sided READ.

    The memory blade NIC DMA-reads ``size_bytes`` from host DRAM and streams
    it back.  No memory-blade CPU is involved, so the only costs are the NIC
    service time, DRAM, and the wire.
    """
    yield engine.process(memory_port.from_switch.transfer(CONTROL_MSG_BYTES))
    yield config.memory_service_us + config.dram_access_us
    yield engine.process(memory_port.to_switch.transfer(size_bytes))


def one_sided_write(
    engine: Engine,
    config: NetworkConfig,
    memory_port: Port,
    size_bytes: int,
) -> Generator:
    """Switch -> memory blade leg of a one-sided WRITE (page flush).

    Completion is the memory blade NIC's ACK arriving back at the switch.
    """
    yield engine.process(memory_port.from_switch.transfer(size_bytes))
    yield config.memory_service_us + config.dram_access_us
    yield engine.process(memory_port.to_switch.transfer(CONTROL_MSG_BYTES))
