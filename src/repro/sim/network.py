"""Rack network substrate: ports, links, and the calibrated latency model.

The disaggregated rack is a star: every blade connects to the single
programmable switch through a dedicated 100 Gbps full-duplex link (each
compute/memory blade VM in the paper's testbed had its own CX-5 NIC).  A
transfer costs serialization (size / bandwidth, during which the link is
held) plus fixed propagation + NIC processing.  Links are modelled as FIFO
resources so concurrent transfers queue, which produces the bandwidth
ceilings and queueing delays of Fig. 7.

All constants live in :class:`NetworkConfig` and are calibrated so that the
end-to-end transaction latencies match the paper: a one-sided RDMA page
fetch through the switch lands at ~9 us and an ownership handoff (sequential
invalidate + fetch) at ~18 us (Fig. 7 left), with local DRAM under 100 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from .engine import Engine, Resource

#: Bytes in a page; MIND performs all remote accesses at page granularity.
PAGE_SIZE = 4096


@dataclass
class NetworkConfig:
    """Latency/bandwidth constants for the rack model (times in us)."""

    #: One-way wire + NIC processing between a blade and the switch.
    link_propagation_us: float = 1.45
    #: Link rate, used for serialization delay (100 Gbps CX-5 in the paper).
    link_bandwidth_gbps: float = 100.0
    #: One pass through the switch ingress+egress pipelines.
    switch_pipeline_us: float = 0.45
    #: Extra cost of recirculating a packet for the directory write-back MAU.
    recirculation_us: float = 0.25
    #: DRAM access at a blade (paper: local accesses < 100 ns).
    dram_access_us: float = 0.085
    #: Memory-blade NIC DMA setup for serving a one-sided READ/WRITE.
    memory_service_us: float = 0.9
    #: Page-fault entry/exit + PTE fixup at the compute blade kernel.
    fault_overhead_us: float = 0.8
    #: Handling one invalidation request at a compute blade (kernel path).
    invalidation_processing_us: float = 1.2
    #: Synchronous TLB shootdown for an unmap/permission change (Fig. 7 right).
    tlb_shootdown_us: float = 4.0
    #: RDMA verb post + completion polling at the requester.
    rdma_verb_overhead_us: float = 0.35

    def serialization_us(self, size_bytes: int) -> float:
        """Time the link is held to push ``size_bytes`` onto the wire."""
        bits = size_bytes * 8
        return bits / (self.link_bandwidth_gbps * 1e3)  # Gbps = bits/ns -> us

    def page_serialization_us(self) -> float:
        return self.serialization_us(PAGE_SIZE)


#: A small control message (request/ACK/invalidation) on the wire.
CONTROL_MSG_BYTES = 64


@dataclass
class LinkFault:
    """A fault window on one link: packet loss and/or a delay spike.

    During ``[start_us, end_us)`` every packet completing serialization is
    dropped with probability ``drop_prob`` (rolled on ``rng``, a seeded
    generator, so loss patterns are reproducible) and surviving packets pay
    ``extra_delay_us`` of additional propagation.
    """

    start_us: float
    end_us: float
    drop_prob: float = 0.0
    extra_delay_us: float = 0.0
    rng: object = field(default=None, repr=False)

    def covers(self, now: float) -> bool:
        return self.start_us <= now < self.end_us


class Link:
    """A unidirectional link: FIFO serialization + fixed propagation.

    Fault injection: :meth:`install_fault` arms loss/delay windows.  A
    dropped packet still held the link for its full serialization time and
    is counted in :attr:`bytes_carried` -- the wire was genuinely occupied
    -- so :meth:`utilization` and byte totals stay truthful under injected
    loss; the loss itself is tallied separately in :attr:`packets_dropped`
    / :attr:`bytes_dropped`.
    """

    def __init__(self, engine: Engine, config: NetworkConfig, name: str):
        self.engine = engine
        self.config = config
        self.name = name
        self._resource = Resource(engine, capacity=1, name=f"link:{name}")
        self.bytes_carried = 0
        self._faults: List[LinkFault] = []
        self.packets_dropped = 0
        self.bytes_dropped = 0
        #: serialization time by payload size; transfers see a handful of
        #: distinct sizes (page, control message) millions of times.
        self._ser_us: Dict[int, float] = {}

    # -- fault injection ------------------------------------------------

    def install_fault(self, fault: LinkFault) -> None:
        """Arm a loss/delay window; windows self-activate by sim time."""
        if fault.drop_prob and fault.rng is None:
            raise ValueError("a lossy LinkFault needs a seeded rng")
        self._faults.append(fault)

    def clear_faults(self) -> None:
        self._faults.clear()

    def _active_fault(self, now: float) -> Optional[LinkFault]:
        for fault in self._faults:
            if fault.covers(now):
                return fault
        return None

    # -- the wire -------------------------------------------------------

    def try_leg(self, size_bytes: int) -> float:
        """Entire uncontended leg (serialization + propagation) as ONE
        delay; -1.0 means fall back to :meth:`try_start` / :meth:`transfer`.

        Strictly stronger guard than :meth:`try_start`: besides an idle
        wire, a fault-free link and an empty ready deque, no parked timer
        may be due before ``now + ser + prop`` and no ``run(until=...)``
        limit may cut inside that window.  Under those conditions *no
        other event can execute* anywhere in the open interval -- events
        only spring from the ready deque, the timer wheel, or code this
        frame runs -- so nobody can observe (or contend for) the wire
        mid-leg.  The hold is therefore virtual: the busy-time integral
        is credited as a lump sum at the start and the server is never
        marked in use, which collapses the leg's two scheduler events
        into a single timer.

        A timer or ``until`` limit landing *exactly* at the leg's end is
        safe: the slow path would have released the wire at the
        serialization boundary, so an observer at the endpoint sees a
        free wire and identical accounting either way.
        """
        engine = self.engine
        res = self._resource
        if self._faults or engine._ready or res._in_use:
            return -1.0
        ser_us = self._ser_us.get(size_bytes)
        if ser_us is None:
            ser_us = self._ser_us[size_bytes] = self.config.serialization_us(size_bytes)
        now = engine.now
        # Float discipline: the slow path wakes at fl(fl(now+ser)+prop),
        # and every timestamp is doc-visible, so the single fused delay
        # must reproduce that exact sum -- addition is not associative.
        # When no representable delta lands there, take the slow path.
        mid = now + ser_us
        done = mid + self.config.link_propagation_us
        if engine._due_head < done:
            return -1.0
        until = engine._until
        if until is not None and until < done:
            return -1.0
        delta = done - now
        if now + delta != done:
            return -1.0
        if now != res._last_change:  # Resource._account(), inlined
            res.busy_time += res._in_use * (now - res._last_change)
            res._last_change = now
        # The lump-sum hold, in the exact floats the slow path accrues.
        res.busy_time += mid - now
        res.grants += 1
        self.bytes_carried += size_bytes
        return delta

    def try_start(self, size_bytes: int) -> float:
        """Claim the wire for a fast-path leg; -1.0 means take
        :meth:`transfer`.

        The generator protocol costs real time on legs that dominate the
        kernel profile, and an uncontended, fault-free leg does nothing a
        plain pair of delays cannot express.  On success the link is held
        (exactly as :meth:`transfer` would hold it) and the caller must::

            yield ser_us              # the value returned here
            yield link.finish(size)   # releases at now, pays propagation

        which reproduces transfer()'s yield sequence -- serialization
        while holding the wire, release at the serialization boundary,
        then propagation -- with no generator frame.  Contended links and
        links with armed fault windows refuse (-1.0): queueing and
        loss/delay injection stay on the one authoritative path.

        The quiet-window guard (ready deque empty, no timer due now) is
        load-bearing: transfer() driven through subtask() acquires the
        wire one-or-more *events* later at the same timestamp, so
        claiming it here is only unobservable when no other event can
        run at this instant -- exactly the condition under which
        subtask() would have fused the transfer inline anyway.
        """
        engine = self.engine
        if (
            self._faults
            or engine._ready
            or engine._due_head <= engine.now
            or not self._resource.try_acquire()
        ):
            return -1.0
        ser_us = self._ser_us.get(size_bytes)
        if ser_us is None:
            ser_us = self._ser_us[size_bytes] = self.config.serialization_us(size_bytes)
        return ser_us

    def finish(self, size_bytes: int) -> float:
        """Complete a :meth:`try_start` leg: account the payload, free the
        wire, and return the propagation delay still to be paid."""
        self.bytes_carried += size_bytes
        self._resource.release()
        return self.config.link_propagation_us

    def transfer(self, size_bytes: int) -> Generator:
        """Process generator: completes when the payload has fully arrived.

        Returns True if the payload was delivered, False if a fault window
        swallowed it (the sender cannot tell until a timeout elapses; the
        serialization time and bytes are accounted either way).
        """
        ser_us = self._ser_us.get(size_bytes)
        if ser_us is None:
            ser_us = self._ser_us[size_bytes] = self.config.serialization_us(size_bytes)
        if not self._resource.try_acquire():
            yield self._resource.acquire()
        try:
            yield ser_us
            self.bytes_carried += size_bytes
        finally:
            self._resource.release()
        delay = self.config.link_propagation_us
        if self._faults:
            fault = self._active_fault(self.engine.now)
            if fault is not None:
                delay += fault.extra_delay_us
                if fault.drop_prob and fault.rng.random() < fault.drop_prob:
                    self.packets_dropped += 1
                    self.bytes_dropped += size_bytes
                    tracer = self.engine.tracer
                    if tracer.enabled:
                        tracer.instant(
                            self.engine.now,
                            "fault",
                            f"drop:{self.name}",
                            track=tracer.track("faults"),
                        )
                    return False
        yield delay
        return True

    def utilization(self) -> float:
        return self._resource.utilization()

    def busy_stats(self) -> Tuple[float, int]:
        """``(busy_time integral, capacity)`` for horizon-independent
        utilization accounting (see :meth:`Resource.busy_integral`)."""
        return self._resource.busy_integral(), self._resource.capacity


class CompositePath:
    """A multi-segment one-way path that quacks like a :class:`Link`.

    Cross-rack traffic traverses several real legs -- the blade's edge
    link, a forwarding pass through its rack switch, the source rack's
    spine uplink and the destination rack's spine downlink -- but the
    coherence engine only speaks the single-``transfer`` link protocol.
    A ``CompositePath`` chains the legs behind that interface, so a home
    switch charges cross-rack distance without knowing about racks.

    Steps are ``(kind, payload, tier)`` tuples: ``LINK`` carries the
    payload over a real :class:`Link`, ``DELAY`` pays a fixed latency,
    and ``PROC`` runs a zero-argument generator factory (e.g. a pipeline
    forwarding pass).  Time spent in steps tagged ``"spine"`` accumulates
    in a deferred bucket; the fault path pops it (:func:`pop_deferred_us`)
    to attribute spine time in its span breakdown.  A dropped leg stops
    the traversal -- the payload never reached later legs.

    Bytes and drops are accounted on the underlying real links only; the
    path itself reports zero so fabric byte totals never double count.
    """

    LINK = "link"
    DELAY = "delay"
    PROC = "proc"

    def __init__(
        self,
        engine: Engine,
        name: str,
        steps: List[Tuple[str, object, str]],
    ):
        self.engine = engine
        self.name = name
        self.steps = tuple(steps)
        self._deferred_spine_us = 0.0
        # Link-protocol accounting attributes (see class docstring).
        self.bytes_carried = 0
        self.packets_dropped = 0
        self.bytes_dropped = 0

    def try_leg(self, size_bytes: int) -> float:
        """Multi-leg paths always take the full :meth:`transfer` path."""
        return -1.0

    def try_start(self, size_bytes: int) -> float:
        """Multi-leg paths always take the full :meth:`transfer` path."""
        return -1.0

    def transfer(self, size_bytes: int) -> Generator:
        """Traverse every leg in order; True iff all legs delivered."""
        for kind, payload, tier in self.steps:
            t0 = self.engine.now
            if kind == self.LINK:
                delivered = yield from payload.transfer(size_bytes)  # type: ignore[attr-defined]
            elif kind == self.DELAY:
                yield payload
                delivered = True
            else:
                delivered = yield from payload()  # type: ignore[operator]
                if delivered is None:
                    delivered = True
            if tier == "spine":
                self._deferred_spine_us += self.engine.now - t0
            if not delivered:
                return False
        return True

    def pop_deferred_us(self) -> float:
        """Spine-tier time banked since the last pop (attribution only)."""
        us = self._deferred_spine_us
        self._deferred_spine_us = 0.0
        return us

    def utilization(self) -> float:
        return 0.0

    def clear_faults(self) -> None:
        for kind, payload, _tier in self.steps:
            if kind == self.LINK:
                payload.clear_faults()  # type: ignore[attr-defined]


def pop_deferred_us(link) -> float:
    """Deferred spine time banked on ``link``; 0.0 for plain links."""
    pop = getattr(link, "pop_deferred_us", None)
    return pop() if pop is not None else 0.0


class Port:
    """A blade's full-duplex attachment point to the switch."""

    def __init__(self, engine: Engine, config: NetworkConfig, name: str, port_id: int):
        self.name = name
        self.port_id = port_id
        self.to_switch = Link(engine, config, f"{name}->switch")
        self.from_switch = Link(engine, config, f"switch->{name}")

    @property
    def links(self) -> Tuple[Link, Link]:
        return (self.to_switch, self.from_switch)

    def packets_dropped(self) -> int:
        return self.to_switch.packets_dropped + self.from_switch.packets_dropped


class Network:
    """The rack's star topology: blades attached to one switch.

    ``port_id_base`` offsets this network's port ids; multi-switch fabrics
    use it to keep port ids globally unique (they key the coherence
    engine's blade registries).
    """

    def __init__(
        self, engine: Engine, config: NetworkConfig = None, port_id_base: int = 0
    ):
        self.engine = engine
        self.config = config or NetworkConfig()
        self.ports: Dict[str, Port] = {}
        self._next_port_id = port_id_base

    def attach(self, name: str) -> Port:
        """Attach a blade; returns its port.  Names must be unique."""
        if name in self.ports:
            raise ValueError(f"port name already attached: {name}")
        port = Port(self.engine, self.config, name, self._next_port_id)
        self._next_port_id += 1
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        return self.ports[name]

    # -- data-path composition helpers ---------------------------------

    def host_to_switch(self, port: Port, size_bytes: int) -> Generator:
        yield from self.engine.subtask(port.to_switch.transfer(size_bytes))

    def switch_to_host(self, port: Port, size_bytes: int) -> Generator:
        yield from self.engine.subtask(port.from_switch.transfer(size_bytes))

    def total_bytes(self) -> int:
        """Bytes that occupied any link, including ones later dropped by an
        injected fault (they were serialized onto the wire regardless)."""
        return sum(
            p.to_switch.bytes_carried + p.from_switch.bytes_carried
            for p in self.ports.values()
        )

    def total_packets_dropped(self) -> int:
        return sum(p.packets_dropped() for p in self.ports.values())

    def total_bytes_dropped(self) -> int:
        return sum(
            p.to_switch.bytes_dropped + p.from_switch.bytes_dropped
            for p in self.ports.values()
        )

    def links(self, port_name: Optional[str] = None, direction: str = "both"):
        """Iterate links, optionally filtered by port name and direction
        ("to_switch", "from_switch", or "both").  Deterministic order."""
        if direction not in ("to_switch", "from_switch", "both"):
            raise ValueError(f"unknown link direction {direction!r}")
        for name, port in self.ports.items():
            if port_name is not None and name != port_name:
                continue
            if direction in ("to_switch", "both"):
                yield port.to_switch
            if direction in ("from_switch", "both"):
                yield port.from_switch
