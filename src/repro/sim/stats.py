"""Metrics collection for simulation runs.

Every figure in the paper's evaluation is a view over a handful of metric
kinds: counters (invalidation counts, flushed pages), latency samples broken
down by component (Fig. 7), and time series (directory occupancy in Fig. 8).
:class:`StatsCollector` provides exactly those, with cheap recording on the
hot path (plain dict/list appends).
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, MutableSequence, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..telemetry.windows import MetricsTimeline


def _latency_samples() -> "array[float]":
    """Factory for latency sample storage (module-level so the defaultdict
    pickles: RunResult crosses process boundaries in multiprocessing
    sweeps).  ``array('d')`` packs samples 8 bytes apiece instead of a
    PyFloat + list slot each, and feeds ``np.asarray`` without copying
    through a Python-object intermediate."""
    return array("d")


@dataclass
class LatencySummary:
    """Summary statistics of one latency category (microseconds)."""

    count: int
    mean: float
    p50: float
    p99: float
    p999: float
    max: float

    @staticmethod
    def of(samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if len(samples) == 1:
            # Every percentile of a single sample is the sample; skip the
            # numpy round-trip (singleton categories are common and this
            # runs once per category per sweep point).
            value = float(samples[0])
            return LatencySummary(1, value, value, value, value, value)
        arr = np.asarray(samples, dtype=np.float64)
        # Sort once and take every percentile from the sorted copy: order
        # statistics are invariant under input order, so the values are
        # bit-identical to per-percentile extraction from the raw array.
        # The mean stays on the original order -- numpy's pairwise
        # summation is order-dependent in the last bit, and historical
        # baselines recorded the unsorted-order sum.
        ordered = np.sort(arr)
        p50, p99, p999 = np.percentile(ordered, (50, 99, 99.9))
        return LatencySummary(
            count=len(samples),
            mean=float(arr.mean()),
            p50=float(p50),
            p99=float(p99),
            p999=float(p999),
            max=float(ordered[-1]),
        )


class StatsCollector:
    """Accumulates counters, latency samples and time series for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.latencies: Dict[str, MutableSequence[float]] = defaultdict(
            _latency_samples
        )
        self.timeseries: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        # Plain nested dicts, not defaultdict(lambda: ...): the lambda is
        # unpicklable, and RunResult must pickle for multiprocessing sweeps.
        self.breakdowns: Dict[str, Dict[str, float]] = {}
        #: point-in-time scalars captured at end of run (resource waits,
        #: utilizations); assignment semantics, unlike additive counters.
        self.gauges: Dict[str, float] = {}
        #: windowed telemetry (a :class:`repro.telemetry.MetricsTimeline`)
        #: when the run enabled it; None otherwise.  Instrumentation sites
        #: guard on ``is not None`` -- one attribute load when disabled.
        self.timeline: Optional["MetricsTimeline"] = None
        #: memoized per-category summaries, keyed by the sample count at
        #: computation time.  Appends grow the count, so staleness checks
        #: are a len() compare -- no hot-path invalidation bookkeeping.
        self._summary_cache: Dict[str, Tuple[int, LatencySummary]] = {}

    # -- recording (hot path) -------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def record_latency(self, category: str, value: float) -> None:
        self.latencies[category].append(value)

    def record_point(self, series: str, t: float, value: float) -> None:
        self.timeseries[series].append((t, value))

    def add_breakdown(self, category: str, component: str, value: float) -> None:
        cat = self.breakdowns.get(category)
        if cat is None:
            cat = self.breakdowns[category] = {}
        cat[component] = cat.get(component, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def latency_summary(self, category: str) -> LatencySummary:
        """Summary of one category; sorted once and memoized per snapshot.

        Repeated reads (report sections, sweep metric extraction, SLO
        evaluation) reuse the cached summary until new samples arrive.
        """
        samples = self.latencies.get(category)
        if not samples:
            return LatencySummary.of(())
        n = len(samples)
        cached = self._summary_cache.get(category)
        if cached is not None and cached[0] == n:
            return cached[1]
        summary = LatencySummary.of(samples)
        self._summary_cache[category] = (n, summary)
        return summary

    def snapshot(self) -> Dict[str, LatencySummary]:
        """All latency categories summarized, sorted by name.

        The single entry point the report, the sweep metric extraction
        and the windowed telemetry path share: each category is sorted
        once per snapshot (and cached), not once per percentile read.
        """
        return {cat: self.latency_summary(cat) for cat in sorted(self.latencies)}

    def mean_latency(self, category: str) -> float:
        return self.latency_summary(category).mean

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self.timeseries.get(name, []))

    def breakdown(self, category: str) -> Dict[str, float]:
        return dict(self.breakdowns.get(category, {}))

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector into this one (e.g. per-thread partials)."""
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, vs in other.latencies.items():
            self.latencies[k].extend(vs)
        for k, pts in other.timeseries.items():
            self.timeseries[k].extend(pts)
        for cat, comps in other.breakdowns.items():
            for comp, v in comps.items():
                self.add_breakdown(cat, comp, v)
        self.gauges.update(other.gauges)
        if other.timeline is not None:
            if self.timeline is None:
                self.timeline = other.timeline
            else:
                self.timeline.merge(other.timeline)


@dataclass
class RunResult:
    """Outcome of replaying a workload on one of the systems.

    ``runtime_us`` is the simulated makespan; ``throughput_iops`` counts
    completed memory accesses per simulated second.
    """

    system: str
    workload: str
    num_blades: int
    num_threads: int
    runtime_us: float
    total_accesses: int
    stats: StatsCollector = field(repr=False, default_factory=StatsCollector)
    #: the run's event trace (a :class:`repro.obs.Tracer`) when tracing was
    #: enabled; None otherwise.
    trace: Optional[object] = field(repr=False, default=None)
    #: scheduler-side counters (events executed, fast-path hits) from
    #: :meth:`repro.sim.engine.Engine.kernel_stats` -- consumed by the
    #: profiling harness, never folded into sweep metrics.
    kernel_stats: Dict[str, int] = field(repr=False, compare=False, default_factory=dict)

    @property
    def throughput_iops(self) -> float:
        if self.runtime_us <= 0:
            return 0.0
        return self.total_accesses / (self.runtime_us / 1e6)

    @property
    def performance(self) -> float:
        """Inverse runtime, the paper's scaling metric (Fig. 5)."""
        if self.runtime_us <= 0:
            return 0.0
        return 1.0 / self.runtime_us

    def normalized_to(self, baseline: "RunResult") -> float:
        """Performance normalized to a baseline run, as plotted in Fig. 5."""
        if self.runtime_us <= 0:
            return 0.0
        return baseline.runtime_us / self.runtime_us

    def fraction_of_accesses(self, counter: str) -> float:
        """A counter as a fraction of total accesses (Fig. 6's y-axis)."""
        if self.total_accesses == 0:
            return 0.0
        return self.stats.counter(counter) / self.total_accesses

    def report(self):
        """Digest this run as a :class:`repro.obs.report.RunReport`."""
        # Imported lazily: repro.obs.report imports this module.
        from ..obs.report import RunReport

        return RunReport.from_result(self)
