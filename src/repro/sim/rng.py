"""Seeded random-number utilities shared by workload generators.

All stochastic behaviour in the repository flows through explicitly seeded
:class:`numpy.random.Generator` instances so that every experiment is
reproducible bit-for-bit.  The helpers here also provide the Zipfian sampler
used by the YCSB workloads (numpy's ``zipf`` has unbounded support, which is
wrong for a finite keyspace).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def make_rng(seed: Optional[int]) -> np.random.Generator:
    """Create a deterministic generator from an integer seed."""
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a numbered stream.

    Used to give each simulated thread its own stream while keeping the whole
    workload a function of a single seed.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (stream * 0x9E3779B97F4A7C15) % (2**63)
    return np.random.default_rng(seed & (2**63 - 1))


class ZipfianSampler:
    """Bounded Zipfian sampler over ``[0, n)`` as used by YCSB.

    YCSB's default request distribution is Zipfian with exponent
    ``theta = 0.99``.  We precompute the CDF once (O(n)) and sample by binary
    search (O(log n) per draw, vectorised through numpy).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: Optional[int] = None):
        if n <= 0:
            raise ValueError("keyspace size must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._rng = make_rng(seed)

    def sample(self, size: int = 1) -> np.ndarray:
        """Draw ``size`` keys; rank 0 is the hottest key."""
        u = self._rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])


def scrambled(keys: np.ndarray, n: int) -> np.ndarray:
    """YCSB-style "scrambled Zipfian": spread hot keys across the keyspace.

    Applies a fixed multiplicative hash so the hottest ranks do not cluster
    at the start of the key range (which would put them all on one page).
    """
    return (keys * np.int64(0x5DEECE66D) + np.int64(0xB)) % np.int64(n)
