"""Discrete-event simulation substrate for the MIND reproduction.

Exports the event engine, the rack network model and metric collection used
by every other subpackage.
"""

from .engine import AllOf, Engine, Event, Process, Resource, SimulationError
from .network import CONTROL_MSG_BYTES, PAGE_SIZE, Link, Network, NetworkConfig, Port
from .rng import ZipfianSampler, derive_rng, make_rng, scrambled
from .stats import LatencySummary, RunResult, StatsCollector

__all__ = [
    "AllOf",
    "CONTROL_MSG_BYTES",
    "Engine",
    "Event",
    "LatencySummary",
    "Link",
    "Network",
    "NetworkConfig",
    "PAGE_SIZE",
    "Port",
    "Process",
    "Resource",
    "RunResult",
    "SimulationError",
    "StatsCollector",
    "ZipfianSampler",
    "derive_rng",
    "make_rng",
    "scrambled",
]
