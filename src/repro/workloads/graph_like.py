"""GC: a GraphChi/PageRank-on-Twitter-like workload (Section 7).

Graph traversal is the paper's mid-contention case: random, often
contentious access to shared vertex state.  PageRank reads the ranks of a
vertex's neighbours -- dominated by a small set of *hub* vertices in a
power-law graph like Twitter's -- and writes vertices' new ranks.  Because
degree-sorted layouts pack the hubs onto a few pages, those pages are both
read-hot (every thread's neighbour reads) and write-hot (the hubs' own
rank updates), so they ping-pong between Modified and Shared across
blades.  GC writes ~2.5x more shared data than TF, and the paper shows its
scaling peaking at 2 compute blades and degrading beyond (Fig. 5 center)
as invalidations, TLB shootdowns and flushed pages climb (Fig. 6).

The hub set is modelled as a two-tier distribution: ``hot_fraction`` of
rank-region traffic concentrates on ``hot_pages`` hub pages, the rest is
uniform over the whole rank array.  (A raw Zipf head is *too* heavy: one
page absorbs ~25 % of traffic and saturates immediately; real hub mass is
spread over the top few dozen pages.)
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from .trace import RegionSpec, TraceWorkload


class GraphLikeWorkload(TraceWorkload):
    """PageRank-like: hub-concentrated shared reads *and* writes."""

    name = "GC"

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int = 5_000,
        rank_pages: int = 8_000,
        edge_pages_per_thread: int = 3_000,
        neighbour_reads_per_vertex: int = 5,
        hot_pages: int = 24,
        hot_fraction: float = 0.30,
        seed: int = 1,
        burst: int = 8,
    ):
        super().__init__(num_threads, accesses_per_thread, seed, burst)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if hot_pages < 1 or hot_pages > rank_pages:
            raise ValueError("hot_pages must be in [1, rank_pages]")
        self.rank_pages = rank_pages
        self.edge_pages_per_thread = edge_pages_per_thread
        self.neighbour_reads_per_vertex = neighbour_reads_per_vertex
        self.hot_pages = hot_pages
        self.hot_fraction = hot_fraction

    def region_specs(self) -> List[RegionSpec]:
        specs = [RegionSpec("ranks", self.rank_pages * PAGE_SIZE)]
        specs.extend(
            RegionSpec(f"edges{t}", self.edge_pages_per_thread * PAGE_SIZE)
            for t in range(self.num_threads)
        )
        return specs

    def _hub_skewed_pages(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Rank pages with hub concentration: two-tier hot/uniform mix."""
        hot = rng.random(n) < self.hot_fraction
        hub = rng.integers(0, self.hot_pages, size=n)
        cold = rng.integers(0, self.rank_pages, size=n)
        return np.where(hot, hub, cold)

    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        per_vertex = self.neighbour_reads_per_vertex + 2  # reads + edges + write
        vertices = max(1, -(-self.num_touches // per_vertex))
        regions: List[np.ndarray] = []
        pages: List[np.ndarray] = []
        writes: List[np.ndarray] = []
        edge_region = 1 + thread_id
        edge_cursor = 0
        for _v in range(vertices):
            k = self.neighbour_reads_per_vertex
            # Read neighbour ranks: shared, hub-skewed.
            regions.append(np.zeros(k, dtype=np.int64))
            pages.append(self._hub_skewed_pages(rng, k))
            writes.append(np.zeros(k, dtype=bool))
            # Stream the vertex's edge list from private storage.
            regions.append(np.array([edge_region], dtype=np.int64))
            pages.append(np.array([edge_cursor % self.edge_pages_per_thread]))
            writes.append(np.array([False]))
            edge_cursor += 1
            # Write the new rank; hub pages take their share of writes too
            # (degree-sorted layout packs hubs together), which is what
            # ping-pongs the hot regions M <-> S across blades.
            regions.append(np.zeros(1, dtype=np.int64))
            pages.append(self._hub_skewed_pages(rng, 1))
            writes.append(np.array([True]))
        out_regions = np.concatenate(regions)[: self.num_touches]
        out_pages = np.concatenate(pages)[: self.num_touches]
        out_writes = np.concatenate(writes)[: self.num_touches]
        return out_regions, out_pages, out_writes
