"""Trace file I/O: capture, save and replay memory-access traces.

The paper's methodology captures application memory accesses with Intel
PIN and replays them across systems.  This module gives downstream users
the same workflow with their *own* traces:

- :func:`save_traces` / :func:`load_traces` persist per-thread access
  streams as a single compressed ``.npz`` file (portable, versioned).
- :class:`FileWorkload` wraps a loaded trace set in the standard
  :class:`~repro.workloads.trace.TraceWorkload` interface, so a recorded
  trace replays on MIND, GAM or FastSwap via the normal runner.
- :func:`convert_pin_text` ingests the simple text format PIN tools
  commonly emit (``<thread> <hex address> R|W`` per line).

Addresses in trace files are *region-relative* (region index, page
index), like generated workloads, so a trace is valid regardless of where
a particular run's allocator places the regions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..sim.network import PAGE_SIZE
from .trace import RegionSpec, TraceWorkload

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """The file is not a valid trace bundle."""


def save_traces(
    path: Union[str, Path],
    name: str,
    region_specs: Sequence[RegionSpec],
    per_thread: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> None:
    """Write a trace bundle.

    ``per_thread`` holds, for each thread, ``(regions, pages, writes)``
    arrays in the region-relative representation.
    """
    meta = {
        "version": FORMAT_VERSION,
        "name": name,
        "num_threads": len(per_thread),
        "regions": [
            {"name": spec.name, "size_bytes": int(spec.size_bytes)}
            for spec in region_specs
        ],
    }
    arrays: Dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    }
    for tid, (regions, pages, writes) in enumerate(per_thread):
        if not (len(regions) == len(pages) == len(writes)):
            raise TraceFormatError(f"thread {tid}: mismatched array lengths")
        arrays[f"t{tid}_regions"] = np.asarray(regions, dtype=np.int64)
        arrays[f"t{tid}_pages"] = np.asarray(pages, dtype=np.int64)
        arrays[f"t{tid}_writes"] = np.asarray(writes, dtype=bool)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_traces(path: Union[str, Path]):
    """Read a trace bundle; returns ``(name, region_specs, per_thread)``."""
    with np.load(path) as bundle:
        try:
            meta = json.loads(bytes(bundle["meta"]).decode())
        except KeyError as exc:
            raise TraceFormatError("missing metadata block") from exc
        if meta.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {meta.get('version')!r}"
            )
        specs = [
            RegionSpec(r["name"], int(r["size_bytes"])) for r in meta["regions"]
        ]
        per_thread = []
        for tid in range(meta["num_threads"]):
            try:
                per_thread.append(
                    (
                        bundle[f"t{tid}_regions"],
                        bundle[f"t{tid}_pages"],
                        bundle[f"t{tid}_writes"],
                    )
                )
            except KeyError as exc:
                raise TraceFormatError(f"missing arrays for thread {tid}") from exc
    return meta["name"], specs, per_thread


class FileWorkload(TraceWorkload):
    """A workload backed by a recorded trace bundle."""

    def __init__(self, path: Union[str, Path], burst: int = 1):
        name, specs, per_thread = load_traces(path)
        if not per_thread:
            raise TraceFormatError("trace bundle has no threads")
        accesses = max(len(t[0]) for t in per_thread) * burst
        super().__init__(
            num_threads=len(per_thread),
            accesses_per_thread=max(1, accesses),
            burst=burst,
        )
        self.name = name
        self._specs = specs
        self._per_thread = per_thread

    def region_specs(self) -> List[RegionSpec]:
        return list(self._specs)

    def _generate(self, thread_id: int, rng) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._per_thread[thread_id]

    def thread_trace(self, thread_id: int, bases):
        """Bind without padding: each thread keeps its recorded length."""
        regions, pages, writes = self._per_thread[thread_id]
        if self.burst > 1:
            regions = np.repeat(regions, self.burst)
            pages = np.repeat(pages, self.burst)
            writes = np.repeat(writes, self.burst)
        base_arr = np.asarray(list(bases), dtype=np.int64)
        from .trace import ThreadTrace

        vas = base_arr[regions] + pages.astype(np.int64) * PAGE_SIZE
        return ThreadTrace(thread_id, vas, writes.astype(bool))


def record_workload(
    workload: TraceWorkload, path: Union[str, Path]
) -> None:
    """Capture a generated workload into a trace bundle (useful to freeze a
    configuration, or to hand the exact streams to another tool)."""
    from .trace import stable_seed
    from ..sim.rng import make_rng

    per_thread = []
    for tid in range(workload.num_threads):
        rng = make_rng(stable_seed(workload.name, workload.seed, tid))
        per_thread.append(workload._generate(tid, rng))
    save_traces(path, workload.name, workload.region_specs(), per_thread)


def convert_pin_text(
    lines,
    region_base: int,
    region_size: int,
    name: str = "pin-trace",
):
    """Convert PIN-style text lines to a trace bundle's in-memory form.

    Expected line format: ``<thread_id> <hex address> <R|W>``.  All
    addresses must fall within ``[region_base, region_base+region_size)``;
    they are mapped onto a single region, page-relative.
    Returns ``(region_specs, per_thread)`` ready for :func:`save_traces`.
    """
    threads: Dict[int, List[Tuple[int, bool]]] = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or parts[2] not in ("R", "W"):
            raise TraceFormatError(f"line {lineno}: expected '<tid> <hex> R|W'")
        tid = int(parts[0])
        addr = int(parts[1], 16)
        if not region_base <= addr < region_base + region_size:
            raise TraceFormatError(
                f"line {lineno}: address {addr:#x} outside the region"
            )
        page = (addr - region_base) // PAGE_SIZE
        threads.setdefault(tid, []).append((page, parts[2] == "W"))
    specs = [RegionSpec(name, region_size)]
    per_thread = []
    for tid in sorted(threads):
        ops = threads[tid]
        pages = np.array([p for p, _w in ops], dtype=np.int64)
        writes = np.array([w for _p, w in ops], dtype=bool)
        regions = np.zeros(len(ops), dtype=np.int64)
        per_thread.append((regions, pages, writes))
    return specs, per_thread
