"""Native-KVS: a simple key-value store run natively on MIND (Section 7.1).

The paper complements the PIN-trace experiments with a key-value store
executed *natively* on MIND and FastSwap (both offer a transparent memory
interface).  Its defining property versus Memcached: the KVS partitions
its state across compute blades, so most of a thread's traffic stays in
its own partition -- which is why Native-KVS under YCSB-A scales better
than M_A (Fig. 5 right).

This module provides both the trace form (for the scaling benchmarks) and
a real dictionary-backed KVS built on the public API (used by the examples
and correctness tests).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from ..sim.rng import ZipfianSampler, scrambled
from .trace import RegionSpec, TraceWorkload, stable_seed


class NativeKvsWorkload(TraceWorkload):
    """Partitioned KVS under YCSB: mostly-local keys, some remote."""

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int = 5_000,
        read_ratio: float = 0.5,
        pages_per_partition: int = 8_000,
        locality: float = 0.75,
        zipf_theta: float = 0.99,
        seed: int = 1,
        burst: int = 8,
    ):
        super().__init__(num_threads, accesses_per_thread, seed, burst)
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.read_ratio = read_ratio
        self.pages_per_partition = pages_per_partition
        self.locality = locality
        self.zipf_theta = zipf_theta
        suffix = "A" if read_ratio < 1.0 else "C"
        self.name = f"NativeKVS-{suffix}"

    def region_specs(self) -> List[RegionSpec]:
        # One partition region per thread; the union is the shared table.
        return [
            RegionSpec(f"part{t}", self.pages_per_partition * PAGE_SIZE)
            for t in range(self.num_threads)
        ]

    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.num_touches
        sampler = ZipfianSampler(
            self.pages_per_partition,
            theta=self.zipf_theta,
            seed=stable_seed(self.name, self.seed, thread_id, "zipf"),
        )
        pages = scrambled(sampler.sample(n), self.pages_per_partition).astype(np.int64)
        local = rng.random(n) < self.locality
        remote_partitions = rng.integers(0, self.num_threads, size=n)
        regions = np.where(local, thread_id, remote_partitions).astype(np.int64)
        writes = rng.random(n) >= self.read_ratio
        return regions, pages, writes


# ---------------------------------------------------------------------------
# A real KVS on the public API (used by examples and integration tests).
# ---------------------------------------------------------------------------

_SLOT_HEADER = struct.Struct("<HH")  # key length, value length
SLOT_SIZE = 256
SLOTS_PER_PAGE = PAGE_SIZE // SLOT_SIZE
#: key-length sentinel marking a deleted slot.
TOMBSTONE = 0xFFFF


class MindKvs:
    """A fixed-slot hash table stored in MIND's disaggregated memory.

    Keys hash to a slot; collisions probe linearly.  Any thread on any
    compute blade can serve any request -- coherence makes the table one
    consistent structure, which is the transparent-elasticity story the
    paper tells.  Deliberately simple: the point is exercising the memory
    system, not building RocksDB.
    """

    def __init__(self, process, num_slots: int = 4096):
        if num_slots < 1:
            raise ValueError("need at least one slot")
        self.process = process
        self.num_slots = num_slots
        self.base = process.mmap(num_slots * SLOT_SIZE)

    def _slot_va(self, index: int) -> int:
        return self.base + (index % self.num_slots) * SLOT_SIZE

    @staticmethod
    def _hash(key: bytes) -> int:
        h = 2166136261
        for b in key:
            h = ((h ^ b) * 16777619) & 0xFFFFFFFF
        return h

    # Each operation comes in two forms: a *generator* (``*_gen``) usable
    # from concurrently simulated threads, and a blocking wrapper that
    # drives the simulation for single-client use.

    def put_gen(self, thread, key: bytes, value: bytes, pdid: Optional[int] = None):
        """Generator form of :meth:`put` for concurrent simulation.

        ``pdid`` accesses the table through a granted protection domain
        (Section 4.2 sessions) instead of the owning process's pid --
        multi-tenant servers grant each tenant its own domain.
        """
        if len(key) + len(value) + _SLOT_HEADER.size > SLOT_SIZE:
            raise ValueError("key+value too large for a slot")
        blade = thread.blade
        pid = thread.process.pid if pdid is None else pdid
        start = self._hash(key)
        target_va = None
        tombstone_va = None
        for probe in range(self.num_slots):
            va = self._slot_va(start + probe)
            header = yield from blade.load_bytes(pid, va, _SLOT_HEADER.size)
            klen, _vlen = _SLOT_HEADER.unpack(header)
            if klen == TOMBSTONE:
                if tombstone_va is None:
                    tombstone_va = va  # reusable, but keep probing for the key
                continue
            if klen == 0:
                target_va = tombstone_va if tombstone_va is not None else va
                break
            if klen == len(key):
                stored = yield from blade.load_bytes(pid, va + _SLOT_HEADER.size, klen)
                if stored == key:
                    target_va = va  # update in place
                    break
        if target_va is None:
            target_va = tombstone_va
        if target_va is None:
            raise RuntimeError("KVS full")
        payload = _SLOT_HEADER.pack(len(key), len(value)) + key + value
        yield from blade.store_bytes(pid, target_va, payload)

    def get_gen(self, thread, key: bytes, pdid: Optional[int] = None):
        """Generator form of :meth:`get` for concurrent simulation."""
        blade = thread.blade
        pid = thread.process.pid if pdid is None else pdid
        start = self._hash(key)
        for probe in range(self.num_slots):
            va = self._slot_va(start + probe)
            header = yield from blade.load_bytes(pid, va, _SLOT_HEADER.size)
            klen, vlen = _SLOT_HEADER.unpack(header)
            if klen == 0:
                return None
            if klen == TOMBSTONE:
                continue
            if klen == len(key):
                stored = yield from blade.load_bytes(pid, va + _SLOT_HEADER.size, klen)
                if stored == key:
                    value = yield from blade.load_bytes(
                        pid, va + _SLOT_HEADER.size + klen, vlen
                    )
                    return value
        return None

    def delete_gen(self, thread, key: bytes, pdid: Optional[int] = None):
        """Generator form of :meth:`delete`.

        Deleted slots become tombstones so later probe chains stay intact;
        ``put`` reuses them.
        """
        blade = thread.blade
        pid = thread.process.pid if pdid is None else pdid
        start = self._hash(key)
        for probe in range(self.num_slots):
            va = self._slot_va(start + probe)
            header = yield from blade.load_bytes(pid, va, _SLOT_HEADER.size)
            klen, _vlen = _SLOT_HEADER.unpack(header)
            if klen == 0:
                return False
            if klen == TOMBSTONE:
                continue
            if klen == len(key):
                stored = yield from blade.load_bytes(pid, va + _SLOT_HEADER.size, klen)
                if stored == key:
                    yield from blade.store_bytes(
                        pid, va, _SLOT_HEADER.pack(TOMBSTONE, 0)
                    )
                    return True
        return False

    @staticmethod
    def _run(thread, gen):
        engine = thread.blade.engine
        return engine.run_until_complete(engine.process(gen))

    def put(self, thread, key: bytes, value: bytes) -> None:
        """Insert or update; raises when the table is full (blocking)."""
        self._run(thread, self.put_gen(thread, key, value))

    def get(self, thread, key: bytes) -> Optional[bytes]:
        """Lookup; returns None when absent (blocking)."""
        return self._run(thread, self.get_gen(thread, key))

    def delete(self, thread, key: bytes) -> bool:
        """Remove a key; returns whether it existed (blocking)."""
        return self._run(thread, self.delete_gen(thread, key))
