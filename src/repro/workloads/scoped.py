"""Team-scoped sharing workload (used by the thread-placement ablation).

Many real services share memory in *clusters*: pipeline stages exchanging
buffers, co-scheduled tasks of one job, sessions of one tenant.  This
workload models that structure: threads form teams of ``team_size``; each
team hammers its own shared scratch region (read-write), with a small
amount of globally shared read-mostly traffic and private work.

Round-robin placement scatters a team across blades, turning its internal
traffic into coherence messages; sharing-aware placement keeps teams
together, making the same traffic local -- the Section 8 "thread
management" opportunity this workload exists to expose.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from .trace import RegionSpec, TraceWorkload


class TeamSharingWorkload(TraceWorkload):
    """Threads share heavily within teams, lightly across them."""

    name = "TeamShare"

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int = 4_000,
        team_size: int = 4,
        team_pages: int = 256,
        global_pages: int = 1_024,
        private_pages: int = 512,
        team_fraction: float = 0.5,
        global_fraction: float = 0.1,
        team_write_ratio: float = 0.5,
        seed: int = 1,
        burst: int = 4,
    ):
        super().__init__(num_threads, accesses_per_thread, seed, burst)
        if num_threads % team_size:
            raise ValueError("num_threads must be a multiple of team_size")
        self.team_size = team_size
        self.num_teams = num_threads // team_size
        self.team_pages = team_pages
        self.global_pages = global_pages
        self.private_pages = private_pages
        self.team_fraction = team_fraction
        self.global_fraction = global_fraction
        self.team_write_ratio = team_write_ratio

    def team_of(self, thread_id: int) -> int:
        return thread_id // self.team_size

    def region_specs(self) -> List[RegionSpec]:
        specs = [RegionSpec("global", self.global_pages * PAGE_SIZE)]
        specs.extend(
            RegionSpec(f"team{t}", self.team_pages * PAGE_SIZE)
            for t in range(self.num_teams)
        )
        specs.extend(
            RegionSpec(f"private{t}", self.private_pages * PAGE_SIZE)
            for t in range(self.num_threads)
        )
        return specs

    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.num_touches
        team_region = 1 + self.team_of(thread_id)
        private_region = 1 + self.num_teams + thread_id
        roll = rng.random(n)
        is_team = roll < self.team_fraction
        is_global = (~is_team) & (roll < self.team_fraction + self.global_fraction)
        regions = np.full(n, private_region, dtype=np.int64)
        regions[is_team] = team_region
        regions[is_global] = 0
        pages = rng.integers(0, self.private_pages, size=n)
        pages[is_team] = rng.integers(0, self.team_pages, size=int(is_team.sum()))
        pages[is_global] = rng.integers(0, self.global_pages, size=int(is_global.sum()))
        # Team traffic is read-write; global traffic is read-mostly;
        # private traffic is read-modify-write.
        writes = np.zeros(n, dtype=bool)
        writes[is_team] = rng.random(int(is_team.sum())) < self.team_write_ratio
        writes[is_global] = rng.random(int(is_global.sum())) < 0.02
        private_mask = ~(is_team | is_global)
        writes[private_mask] = rng.random(int(private_mask.sum())) < 0.5
        return regions, pages, writes
