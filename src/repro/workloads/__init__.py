"""Workload generators reproducing the paper's evaluation traffic.

TF (TensorFlow/ResNet-50), GC (GraphChi/PageRank), M_A/M_C (Memcached under
YCSB A/C), Native-KVS, and the uniform-random microbenchmark of Fig. 7.
All are deterministic functions of a seed; every system replays identical
streams, mirroring the paper's PIN-trace methodology.
"""

from .elastic_kvs import (
    KvsOp,
    KvsTenant,
    REQUEST_CPU_US,
    TENANT_PDID_BASE,
    make_ops,
    server_loop,
    tenant_key,
)
from .churn import (
    OP_MMAP,
    OP_MUNMAP,
    SIZE_DISTRIBUTIONS,
    generate_churn_ops,
)
from .graph_like import GraphLikeWorkload
from .kvs import MindKvs, NativeKvsWorkload, SLOT_SIZE, TOMBSTONE
from .openloop import (
    ARRIVAL_PROCESSES,
    ArrivalSpec,
    arrival_times,
    open_loop_thread,
)
from .scoped import TeamSharingWorkload
from .synthetic import UniformSharingWorkload
from .tensorflow_like import TensorFlowLikeWorkload
from .trace_io import (
    FileWorkload,
    TraceFormatError,
    convert_pin_text,
    load_traces,
    record_workload,
    save_traces,
)
from .trace import (
    RegionSpec,
    ThreadTrace,
    TraceWorkload,
    interleave,
    stable_seed,
)
from .ycsb import MemcachedYcsbWorkload

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalSpec",
    "FileWorkload",
    "GraphLikeWorkload",
    "KvsOp",
    "KvsTenant",
    "MemcachedYcsbWorkload",
    "MindKvs",
    "NativeKvsWorkload",
    "OP_MMAP",
    "OP_MUNMAP",
    "REQUEST_CPU_US",
    "RegionSpec",
    "SIZE_DISTRIBUTIONS",
    "SLOT_SIZE",
    "TENANT_PDID_BASE",
    "TeamSharingWorkload",
    "TOMBSTONE",
    "ThreadTrace",
    "TensorFlowLikeWorkload",
    "TraceFormatError",
    "TraceWorkload",
    "UniformSharingWorkload",
    "arrival_times",
    "convert_pin_text",
    "generate_churn_ops",
    "interleave",
    "load_traces",
    "make_ops",
    "open_loop_thread",
    "record_workload",
    "save_traces",
    "server_loop",
    "stable_seed",
    "tenant_key",
]
