"""Multi-tenant elastic KVS: the serving workload behind ``repro.service``.

Promoted from ``examples/elastic_kvs.py``: the paper's motivating scenario
is a KVS whose hash table lives in the single global address space, so
serving capacity scales by *adding threads on new blades* mid-run with no
sharding or data movement.  This module packages the reusable pieces --
deterministic request generation, the per-request serving generator, and
a :class:`KvsTenant` that isolates each tenant behind its own
:class:`~repro.workloads.kvs.MindKvs` table and protection domain
(Section 4.2 sessions) -- so the example, the service scenario, and the
tests all drive the same code.

Determinism: request sequences are pure functions of
``(service name, seed, tenant, client)`` via :func:`stable_seed`, exactly
like trace generation -- identical across processes and ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..core.vma import PermissionClass
from ..sim.rng import ZipfianSampler, make_rng
from .kvs import MindKvs
from .trace import stable_seed

#: CPU time to parse/handle one request (why serving is compute-bound and
#: worth scaling out in the first place).
REQUEST_CPU_US = 8.0

#: tenant protection-domain ids start here, clear of process pids
#: (the controller allocates pids upward from 1000).
TENANT_PDID_BASE = 50_000


@dataclass(frozen=True)
class KvsOp:
    """One KVS request: a get or a put."""

    op: str
    key: bytes
    value: bytes = b""


def make_ops(
    name: str,
    seed: int,
    tenant: int,
    client: int,
    count: int,
    num_keys: int,
    read_fraction: float = 0.9,
    zipf_theta: float = 0.9,
    value_bytes: int = 24,
) -> List[KvsOp]:
    """A deterministic op sequence for one tenant client.

    Keys follow a Zipfian popularity distribution over the tenant's key
    universe; the read/write mix follows ``read_fraction``.  A pure
    function of the identity tuple -- no simulator state involved.
    """
    rng = make_rng(stable_seed(name, seed, tenant, client, "ops"))
    sampler = ZipfianSampler(
        num_keys, theta=zipf_theta,
        seed=stable_seed(name, seed, tenant, client, "zipf"),
    )
    reads = rng.random(count) < read_fraction if count else []
    ops = []
    for i in range(count):
        key = tenant_key(tenant, int(sampler.sample_one()))
        if reads[i]:
            ops.append(KvsOp("get", key))
        else:
            value = _pad_value(b"v%d.%d.%d" % (tenant, client, i), value_bytes)
            ops.append(KvsOp("put", key, value))
    return ops


def tenant_key(tenant: int, index: int) -> bytes:
    return b"t%d-key-%d" % (tenant, index)


def _pad_value(prefix: bytes, value_bytes: int) -> bytes:
    return prefix.ljust(value_bytes, b".")[:value_bytes]


class KvsTenant:
    """One tenant of a multi-tenant KVS service.

    Owns a private :class:`MindKvs` table in the serving process's address
    space and a protection domain granted read-write access to exactly
    that table -- serving threads execute each tenant's ops through the
    tenant's ``pdid``, so a request can never touch another tenant's
    slots.  Lower ``tenant_id`` means higher priority: the *last* tenant
    sheds first under retry-storm degradation.
    """

    def __init__(
        self,
        process,
        tenant_id: int,
        num_keys: int = 64,
        num_slots: int = 512,
        value_bytes: int = 24,
    ):
        if num_slots < 2 * num_keys:
            raise ValueError(
                "tenant table needs slack: num_slots should be >= 2x num_keys"
            )
        self.tenant_id = tenant_id
        self.num_keys = num_keys
        self.value_bytes = value_bytes
        self.pdid = TENANT_PDID_BASE + tenant_id
        self.kvs = MindKvs(process, num_slots=num_slots)
        process.grant_domain(self.kvs.base, self.pdid, PermissionClass.READ_WRITE)

    def preload_gen(self, thread) -> Generator:
        """Insert every key with a deterministic initial value."""
        for k in range(self.num_keys):
            value = _pad_value(
                b"init.%d.%d" % (self.tenant_id, k), self.value_bytes
            )
            yield from self.kvs.put_gen(
                thread, tenant_key(self.tenant_id, k), value, pdid=self.pdid
            )

    def serve_gen(self, thread, op: KvsOp) -> Generator:
        """Execute one op on ``thread`` through this tenant's domain."""
        if op.op == "get":
            return (yield from self.kvs.get_gen(thread, op.key, pdid=self.pdid))
        yield from self.kvs.put_gen(thread, op.key, op.value, pdid=self.pdid)
        return None


def server_loop(
    kvs: MindKvs, thread, requests: List[KvsOp], cpu_us: float = REQUEST_CPU_US
) -> Generator:
    """A closed-loop serving thread: drain ``requests`` back to back.

    The single-tenant, fixed-batch form the elastic-KVS example uses;
    the service scenario replaces it with an open-loop pool.
    """
    served = 0
    for op in requests:
        yield cpu_us  # request parsing + protocol handling
        if op.op == "get":
            yield from kvs.get_gen(thread, op.key)
        else:
            yield from kvs.put_gen(thread, op.key, op.value)
        served += 1
    return served
