"""M_A / M_C: Memcached under YCSB workloads A and C (Section 7).

YCSB drives a key-value store with Zipfian-distributed keys
(``theta = 0.99``): workload **A** is 50 % reads / 50 % updates, workload
**C** is 100 % reads.  Memcached shards its hash table across all server
threads, so *every* thread touches the *whole* table: the paper notes that
M_A and M_C have far more sharers and shared writes than TF or GC, which
is what saturates the switch directory (Fig. 8 left) and kills inter-blade
scaling for M_A (Fig. 5 center).

Besides the key/value pages themselves, Memcached touches its allocator
and LRU metadata on *every* operation -- a GET bumps the item in the LRU
list, a SET additionally allocates from the slab allocator.  That tiny,
extremely hot, write-shared region is why even the "read-only" M_C
workload generates shared writes, saturates the directory and triggers
over 10x more invalidations than TF or GC (Fig. 6, Fig. 8 left).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from ..sim.rng import ZipfianSampler, scrambled
from .trace import RegionSpec, TraceWorkload, stable_seed


class MemcachedYcsbWorkload(TraceWorkload):
    """Memcached serving YCSB: one shared table, Zipfian keys, all sharers."""

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int = 5_000,
        read_ratio: float = 0.5,
        table_pages: int = 100_000,
        metadata_pages: int = 32,
        metadata_fraction: float = 0.15,
        zipf_theta: float = 0.99,
        seed: int = 1,
        burst: int = 8,
    ):
        super().__init__(num_threads, accesses_per_thread, seed, burst)
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        self.read_ratio = read_ratio
        self.table_pages = table_pages
        self.metadata_pages = metadata_pages
        self.metadata_fraction = metadata_fraction
        self.zipf_theta = zipf_theta
        self.name = "M_A" if read_ratio < 1.0 else "M_C"

    @classmethod
    def workload_a(cls, num_threads: int, **kwargs) -> "MemcachedYcsbWorkload":
        """YCSB-A: 50 % reads, 50 % updates."""
        return cls(num_threads, read_ratio=0.5, **kwargs)

    @classmethod
    def workload_c(cls, num_threads: int, **kwargs) -> "MemcachedYcsbWorkload":
        """YCSB-C: read-only."""
        return cls(num_threads, read_ratio=1.0, **kwargs)

    def region_specs(self) -> List[RegionSpec]:
        return [
            RegionSpec("table", self.table_pages * PAGE_SIZE),
            RegionSpec("metadata", self.metadata_pages * PAGE_SIZE),
        ]

    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.num_touches
        sampler = ZipfianSampler(
            self.table_pages,
            theta=self.zipf_theta,
            seed=stable_seed(self.name, self.seed, thread_id, "zipf"),
        )
        keys = scrambled(sampler.sample(n), self.table_pages)
        writes = rng.random(n) >= self.read_ratio
        regions = np.zeros(n, dtype=np.int64)
        pages = keys.astype(np.int64)
        # Every operation (GET or SET) touches LRU/slab metadata, and those
        # touches are *writes*: GETs bump LRU links, SETs also allocate.
        if self.metadata_fraction > 0:
            meta_mask = rng.random(n) < self.metadata_fraction
            n_meta = int(meta_mask.sum())
            regions[meta_mask] = 1
            pages[meta_mask] = rng.integers(0, self.metadata_pages, size=n_meta)
            writes = writes | meta_mask
        return regions, pages, writes
