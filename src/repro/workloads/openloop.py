"""Open-loop arrival driver: latency under load, not just makespan.

The closed-loop replay (:meth:`ComputeBlade.run_thread` over a whole
trace) issues the next access the moment the previous one retires -- the
right methodology for the paper's makespan/throughput figures, but it
cannot measure *latency under load*: a slow server throttles its own
offered load, hiding the queueing that an SLO would see.

This module adds the serving-systems methodology: requests arrive on a
deterministic schedule that does **not** react to service times.  Each
workload thread becomes a single-server queue --

- an *arrival process* (Poisson or diurnally modulated Poisson) emits
  request arrival times up front, as a pure function of the workload
  seed;
- a dispatcher simulation process releases one request per arrival,
  whether or not earlier requests have finished;
- each request replays the next ``request_size`` accesses of the
  thread's trace through the normal fault path, behind a capacity-1
  worker resource, so the queueing delay (arrival -> service start) is
  captured explicitly.

Recorded latency categories: ``openloop:queue`` (time waiting for the
worker), ``openloop:service`` (trace replay time), ``openloop:latency``
(arrival to completion -- the end-to-end number SLOs are written
against), plus ``openloop_arrivals``/``openloop_completions`` counters.
All of them also land in the windowed timeline when telemetry is on.

Determinism: arrival schedules derive from ``stable_seed`` exactly like
trace generation, so the same (workload, seed, thread) triple always
produces the same arrivals -- across processes, platforms and ``--jobs``.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional

from ..sim.engine import Resource
from ..sim.rng import make_rng
from .trace import AccessStream, stable_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..blades.compute import ComputeBlade
    from ..blades.consistency import ConsistencyModel
    from ..sim.stats import StatsCollector

#: supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "diurnal")

#: piecewise-constant slots per diurnal period (the sinusoid is sampled
#: at slot starts; a continuous rate would need root-finding and buy no
#: additional fidelity at simulation scale).
DIURNAL_SLOTS = 32


@dataclass(frozen=True)
class ArrivalSpec:
    """A deterministic open-loop arrival schedule."""

    #: one of :data:`ARRIVAL_PROCESSES`.
    process: str = "poisson"
    #: mean request arrival rate per thread, in requests per simulated us.
    rate_per_us: float = 0.02
    #: trace accesses consumed per request.
    request_size: int = 8
    #: diurnal modulation period (ignored for plain Poisson).
    period_us: float = 20_000.0
    #: diurnal peak-to-mean swing in [0, 1): rate(t) = mean * (1 + A sin).
    amplitude: float = 0.5

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"choose from {ARRIVAL_PROCESSES}"
            )
        if self.rate_per_us <= 0:
            raise ValueError("arrival rate must be positive")
        if self.request_size < 1:
            raise ValueError("request_size must be >= 1")
        if self.period_us <= 0:
            raise ValueError("diurnal period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")


def arrival_times(spec: ArrivalSpec, num_requests: int, seed: int) -> "array[float]":
    """The request arrival schedule: ``num_requests`` ascending times.

    A pure function of ``(spec, num_requests, seed)``.  Poisson draws
    exponential inter-arrival gaps; the diurnal process rescales
    unit-rate exponential increments through a piecewise-constant
    sinusoidal rate profile (the standard inhomogeneous-Poisson
    time-rescaling construction, exact for a piecewise-constant rate).
    """
    rng = make_rng(seed)
    if num_requests <= 0:
        return array("d")
    if spec.process == "poisson":
        gaps = rng.exponential(1.0 / spec.rate_per_us, size=num_requests)
        out = array("d")
        t = 0.0
        for gap in gaps.tolist():
            t += gap
            out.append(t)
        return out
    # Diurnal: consume unit-rate exponential "work" through rate slots.
    slot_us = spec.period_us / DIURNAL_SLOTS
    rates = [
        spec.rate_per_us
        * (1.0 + spec.amplitude * math.sin(2.0 * math.pi * i / DIURNAL_SLOTS))
        for i in range(DIURNAL_SLOTS)
    ]
    increments = rng.exponential(1.0, size=num_requests)
    out = array("d")
    t = 0.0
    for remaining in increments.tolist():
        while True:
            slot_index = int(t / slot_us)
            rate = rates[slot_index % DIURNAL_SLOTS]
            slot_end = (slot_index + 1) * slot_us
            capacity = rate * (slot_end - t)
            if remaining <= capacity:
                t += remaining / rate
                break
            remaining -= capacity
            t = slot_end
        out.append(t)
    return out


def open_loop_thread(
    blade: "ComputeBlade",
    pdid: int,
    stream: AccessStream,
    spec: ArrivalSpec,
    seed: int,
    consistency: "ConsistencyModel",
    name: str = "openloop",
) -> Generator:
    """Dispatcher process: one thread's open-loop request schedule.

    Releases a request at every arrival time regardless of earlier
    requests' progress; requests execute behind a capacity-1 named
    worker resource (so queueing shows up in the hotspot report too) and
    the dispatcher joins them all before returning.
    """
    engine = blade.engine
    stats: "StatsCollector" = blade.stats
    timeline = stats.timeline
    size = spec.request_size
    num_requests = -(-len(stream) // size)
    arrivals = arrival_times(spec, num_requests, seed)
    # Arrival times are relative to the *dispatcher's* start, not absolute
    # simulation time: a serving thread added mid-run (elastic capacity)
    # starts its schedule fresh instead of releasing every "past-due"
    # arrival as one thundering-herd burst.  Threads started at t=0 (the
    # whole-run case) are unaffected.
    t_start = engine.now
    worker = Resource(engine, capacity=1, name=f"{name}.worker")
    procs: List = []
    for r in range(num_requests):
        at = t_start + arrivals[r]
        if at > engine.now:
            yield at - engine.now
        stats.incr("openloop_arrivals")
        if timeline is not None:
            timeline.incr(engine.now, "openloop:arrivals")
        sub = stream.slice(r * size, (r + 1) * size)
        procs.append(
            engine.process(
                _request(blade, pdid, sub, worker, consistency),
                name=f"{name}.req{r}",
            )
        )
    if procs:
        yield engine.all_of(procs)
    return len(stream)


def _request(
    blade: "ComputeBlade",
    pdid: int,
    accesses: AccessStream,
    worker: Resource,
    consistency: "ConsistencyModel",
) -> Generator:
    """One request: queue for the worker, replay its trace slice."""
    engine = blade.engine
    stats = blade.stats
    timeline = stats.timeline
    t_arrival = engine.now
    wait = 0.0 if worker.try_acquire() else ((yield worker.acquire()) or 0.0)
    try:
        yield from blade.run_thread(pdid, accesses, consistency=consistency)
    finally:
        worker.release()
    t_done = engine.now
    total = t_done - t_arrival
    stats.record_latency("openloop:queue", wait)
    stats.record_latency("openloop:service", total - wait)
    stats.record_latency("openloop:latency", total)
    stats.incr("openloop_completions")
    if timeline is not None:
        timeline.record_latency(t_done, "openloop:queue", wait)
        timeline.record_latency(t_done, "openloop:latency", total)
        timeline.incr(t_done, "openloop:completions")


def spec_from_config(config) -> Optional[ArrivalSpec]:
    """Build an :class:`ArrivalSpec` from a RunnerConfig, or None when the
    run is closed-loop (``arrival_process`` unset)."""
    if config.arrival_process is None:
        return None
    return ArrivalSpec(
        process=str(config.arrival_process),
        rate_per_us=config.arrival_rate_per_thread,
        request_size=config.request_size,
        period_us=config.diurnal_period_us,
        amplitude=config.diurnal_amplitude,
    )


def thread_arrival_seed(workload_name: str, workload_seed: int, thread_id: int) -> int:
    """Stable arrival-schedule seed for one workload thread."""
    return stable_seed(workload_name, workload_seed, "openloop", thread_id)
