"""Churn workload: a seeded malloc/free op stream for the allocator ablation.

Unlike the trace workloads (which allocate once and replay accesses), the
churn workload is *all* allocation: every thread issues a seeded sequence
of ``mmap``/``munmap`` syscalls that hovers around a target live-object
count, exactly the steady-state heap churn the ``mind-malloc-bench``
comparison exercises.  The generator is a pure function of
``(seed, thread_id)`` via :func:`~repro.workloads.trace.stable_seed`, so
allocator sweeps stay byte-identical at any ``--jobs``.

Ops are generated against a *simulated* live count that assumes every mmap
succeeds; at runtime an ENOMEM simply drops the object, and munmap victims
are taken modulo the actual live list, so the executed sequence remains a
deterministic function of the generated one even when policies differ in
where they run out of memory.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .trace import stable_seed

#: op kinds in a generated stream.
OP_MMAP = 0
OP_MUNMAP = 1

#: size-distribution bounds (bytes, log-uniform between lo and hi).
SIZE_DISTRIBUTIONS = {
    "small": ((256, 16 * 1024),),
    "large": ((32 * 1024, 1 << 20),),
    # 75 % small objects, 25 % large -- the mixed heap a server sees.
    "mixed": ((256, 16 * 1024), (32 * 1024, 1 << 20)),
}
_MIXED_LARGE_FRACTION = 0.25


def _sample_size(rng: np.random.Generator, size_dist: str) -> int:
    bounds = SIZE_DISTRIBUTIONS[size_dist]
    if len(bounds) == 2 and rng.random() < _MIXED_LARGE_FRACTION:
        lo, hi = bounds[1]
    else:
        lo, hi = bounds[0]
    return int(2.0 ** rng.uniform(math.log2(lo), math.log2(hi)))


def generate_churn_ops(
    seed: int,
    thread_id: int,
    ops_per_thread: int,
    live_target: int,
    size_dist: str = "mixed",
) -> List[Tuple[int, int]]:
    """One thread's op stream: ``(OP_MMAP, size)`` / ``(OP_MUNMAP, victim)``.

    The alloc/free mix self-regulates: allocation probability decays
    linearly with the simulated live count and crosses 1/2 exactly at
    ``live_target``, so the heap hovers there.  ``victim`` indexes the
    live list at execution time (modulo its actual length).
    """
    if size_dist not in SIZE_DISTRIBUTIONS:
        raise ValueError(
            f"unknown size_dist {size_dist!r}; "
            f"choose from {sorted(SIZE_DISTRIBUTIONS)}"
        )
    if ops_per_thread <= 0:
        raise ValueError("ops_per_thread must be positive")
    if live_target <= 0:
        raise ValueError("live_target must be positive")
    rng = np.random.default_rng(stable_seed("churn", seed, thread_id))
    ops: List[Tuple[int, int]] = []
    live = 0
    for _ in range(ops_per_thread):
        p_alloc = 1.0 - live / (2.0 * live_target)
        p_alloc = min(0.95, max(0.05, p_alloc))
        if live == 0 or rng.random() < p_alloc:
            ops.append((OP_MMAP, _sample_size(rng, size_dist)))
            live += 1
        else:
            ops.append((OP_MUNMAP, int(rng.integers(live))))
            live -= 1
    return ops
