"""Synthetic microbenchmark workload (Fig. 7 center/right).

The paper's bottleneck study drives 8 compute blades with a uniform-random
access pattern over a 400 k-page working set, sweeping two knobs:

- ``read_ratio``: fraction of accesses that are reads (rest are writes);
- ``sharing_ratio``: fraction of accesses that go to a region shared by
  *all* threads (the rest hit a per-thread private region).

High write + high sharing maximizes ``M->S``/``S->M`` transitions with
invalidations; read-only or private traffic stays cached locally.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from .trace import RegionSpec, TraceWorkload


class UniformSharingWorkload(TraceWorkload):
    """Uniform-random accesses with tunable read and sharing ratios."""

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int = 5_000,
        read_ratio: float = 0.5,
        sharing_ratio: float = 0.5,
        shared_pages: int = 400_000,
        private_pages_per_thread: int = 4_096,
        seed: int = 1,
        burst: int = 1,
    ):
        super().__init__(num_threads, accesses_per_thread, seed, burst)
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if not 0.0 <= sharing_ratio <= 1.0:
            raise ValueError("sharing_ratio must be in [0, 1]")
        self.read_ratio = read_ratio
        self.sharing_ratio = sharing_ratio
        self.shared_pages = shared_pages
        self.private_pages_per_thread = private_pages_per_thread
        self.name = f"uniform(r={read_ratio},s={sharing_ratio})"

    def region_specs(self) -> List[RegionSpec]:
        specs = [RegionSpec("shared", self.shared_pages * PAGE_SIZE)]
        specs.extend(
            RegionSpec(f"private{t}", self.private_pages_per_thread * PAGE_SIZE)
            for t in range(self.num_threads)
        )
        return specs

    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.num_touches
        shared = rng.random(n) < self.sharing_ratio
        writes = rng.random(n) >= self.read_ratio
        regions = np.where(shared, 0, 1 + thread_id).astype(np.int64)
        shared_pages = rng.integers(0, self.shared_pages, size=n)
        private_pages = rng.integers(0, self.private_pages_per_thread, size=n)
        pages = np.where(shared, shared_pages, private_pages)
        return regions, pages, writes
