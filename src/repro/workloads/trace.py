"""Workload traces: the framework for replayable memory-access streams.

The paper captures each application's memory accesses with Intel PIN and
replays the *identical* stream on MIND, GAM and FastSwap so that systems
with different interfaces see the same work (Section 7).  We reproduce that
methodology: a :class:`TraceWorkload` deterministically generates, from a
seed, a per-thread stream of ``(virtual address, is_write)`` accesses over
a set of mmapped regions; every system replays the same stream.

Addresses are produced region-relative (region index + page offset) and
bound to real virtual addresses only after the target system performs its
allocations, since different systems may place regions differently.
"""

from __future__ import annotations

import abc
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from ..sim.rng import make_rng


def stable_seed(*parts) -> int:
    """Process-independent seed from arbitrary parts (``hash()`` is salted
    per interpreter run, which would break trace reproducibility)."""
    import zlib

    text = "|".join(repr(p) for p in parts)
    return zlib.crc32(text.encode()) & 0x7FFFFFFF


@dataclass(frozen=True)
class RegionSpec:
    """One mmapped region a workload uses."""

    name: str
    size_bytes: int

    @property
    def num_pages(self) -> int:
        return max(1, self.size_bytes // PAGE_SIZE)


class AccessStream:
    """A replay-ready access stream in compact array form.

    Virtual addresses live in an ``array('q')`` and the read/write flags in
    a ``bytes`` of 0/1 -- one machine word + one byte per access instead of
    a Python tuple, int and bool.  ``run_thread`` implementations iterate
    the two sequences index-wise, which avoids materialising a tuple per
    replayed access on the simulator's hottest path.

    The class still iterates as ``(va, is_write)`` pairs so code written
    against the tuple protocol (tests, the public API) keeps working.
    """

    __slots__ = ("vas", "writes")

    def __init__(self, vas: "array[int]", writes: bytes):
        if len(vas) != len(writes):
            raise ValueError(
                f"stream arrays disagree: {len(vas)} addresses, "
                f"{len(writes)} write flags"
            )
        self.vas = vas
        self.writes = writes

    @classmethod
    def from_numpy(cls, vas: np.ndarray, writes: np.ndarray) -> "AccessStream":
        return cls(
            array("q", vas.astype(np.int64, copy=False).tolist()),
            np.asarray(writes, dtype=np.uint8).tobytes(),
        )

    @classmethod
    def coerce(cls, accesses: "AccessOrStream") -> "AccessStream":
        """Accept either a stream or any ``(va, is_write)`` iterable."""
        if isinstance(accesses, cls):
            return accesses
        vas = array("q")
        flags = bytearray()
        for va, is_write in accesses:
            vas.append(va)
            flags.append(1 if is_write else 0)
        return cls(vas, bytes(flags))

    def __len__(self) -> int:
        return len(self.vas)

    def __iter__(self) -> Iterator[Tuple[int, bool]]:
        return zip(self.vas, map(bool, self.writes))

    def slice(self, start: int, stop: int) -> "AccessStream":
        """A sub-stream over ``[start, stop)`` (clamped to the length).

        Used by the open-loop driver to replay a trace request-by-request;
        slicing the backing arrays copies only the selected accesses.
        """
        return AccessStream(self.vas[start:stop], self.writes[start:stop])


#: what replay endpoints accept: a compact stream or any tuple iterable.
AccessOrStream = Iterable[Tuple[int, bool]]


@dataclass
class ThreadTrace:
    """One thread's access stream, bound to concrete virtual addresses."""

    thread_id: int
    vas: np.ndarray      # int64 virtual addresses
    writes: np.ndarray   # bool
    _stream: Optional[AccessStream] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.vas)

    def accesses(self) -> Iterator[Tuple[int, bool]]:
        """Iterate ``(va, is_write)`` tuples (plain ints/bools for speed)."""
        return zip(self.vas.tolist(), self.writes.tolist())

    def stream(self) -> AccessStream:
        """The compact array-backed form of this trace (memoized)."""
        if self._stream is None:
            self._stream = AccessStream.from_numpy(self.vas, self.writes)
        return self._stream

    @property
    def write_fraction(self) -> float:
        return float(self.writes.mean()) if len(self.writes) else 0.0


class TraceWorkload(abc.ABC):
    """A deterministic workload: region plan + per-thread access streams.

    Subclasses implement :meth:`region_specs` (what to mmap) and
    :meth:`_generate` (region-relative accesses).  The same
    ``(workload, seed, thread_id)`` triple always yields the same stream,
    which is what makes cross-system comparisons apples-to-apples.
    """

    name: str = "workload"

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int,
        seed: int = 1,
        burst: int = 1,
    ):
        if num_threads < 1:
            raise ValueError("need at least one thread")
        if accesses_per_thread < 1:
            raise ValueError("need at least one access per thread")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.num_threads = num_threads
        self.accesses_per_thread = accesses_per_thread
        self.seed = seed
        #: temporal locality: each generated page-touch is replayed as this
        #: many consecutive accesses (real applications issue many loads/
        #: stores per page visit; PIN traces show the same page repeated).
        self.burst = burst
        #: memoized region-relative streams per thread.  Generation is a
        #: pure function of (workload, seed, thread), so caching is safe;
        #: sweeps replay the same workload on several systems and pay for
        #: generation once instead of once per point.
        self._generated: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def num_touches(self) -> int:
        """Page-touches a generator must produce per thread (pre-burst)."""
        return -(-self.accesses_per_thread // self.burst)

    # -- to be provided by concrete workloads ------------------------------

    @abc.abstractmethod
    def region_specs(self) -> List[RegionSpec]:
        """The regions this workload mmaps, in index order."""

    @abc.abstractmethod
    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Region-relative stream: (region indices, page indices, writes)."""

    # -- binding ----------------------------------------------------------------

    def thread_trace(self, thread_id: int, bases: Sequence[int]) -> ThreadTrace:
        """Bind thread ``thread_id``'s stream to allocated region bases."""
        specs = self.region_specs()
        if len(bases) != len(specs):
            raise ValueError(
                f"{self.name}: got {len(bases)} bases for {len(specs)} regions"
            )
        cached = self._generated.get(thread_id)
        if cached is None:
            rng = make_rng(stable_seed(self.name, self.seed, thread_id))
            cached = self._generate(thread_id, rng)
            self._generated[thread_id] = cached
        regions, pages, writes = cached
        if not (len(regions) == len(pages) == len(writes)):
            raise ValueError("generator returned mismatched arrays")
        if self.burst > 1:
            regions = np.repeat(regions, self.burst)[: self.accesses_per_thread]
            pages = np.repeat(pages, self.burst)[: self.accesses_per_thread]
            writes = np.repeat(writes, self.burst)[: self.accesses_per_thread]
        base_arr = np.asarray(list(bases), dtype=np.int64)
        vas = base_arr[regions] + pages.astype(np.int64) * PAGE_SIZE
        return ThreadTrace(thread_id, vas, writes.astype(bool))

    def all_traces(self, bases: Sequence[int]) -> List[ThreadTrace]:
        return [self.thread_trace(t, bases) for t in range(self.num_threads)]

    # -- summary statistics (used by tests & docs) -------------------------------

    def footprint_bytes(self) -> int:
        return sum(spec.size_bytes for spec in self.region_specs())

    def describe(self) -> str:
        specs = self.region_specs()
        return (
            f"{self.name}: {self.num_threads} threads x "
            f"{self.accesses_per_thread} accesses, "
            f"{len(specs)} regions, {self.footprint_bytes() / (1 << 20):.1f} MiB"
        )


def interleave(traces: List[ThreadTrace], chunk: int = 64) -> ThreadTrace:
    """Merge several thread traces round-robin into one stream.

    Used by the single-threaded baselines (FastSwap replays all threads'
    accesses on one blade) to preserve the interleaving the threads would
    have produced.
    """
    if not traces:
        raise ValueError("no traces to interleave")
    vas_parts: List[np.ndarray] = []
    writes_parts: List[np.ndarray] = []
    cursors = [0] * len(traces)
    remaining = sum(len(t) for t in traces)
    while remaining > 0:
        for i, trace in enumerate(traces):
            start = cursors[i]
            if start >= len(trace):
                continue
            stop = min(start + chunk, len(trace))
            vas_parts.append(trace.vas[start:stop])
            writes_parts.append(trace.writes[start:stop])
            remaining -= stop - start
            cursors[i] = stop
    return ThreadTrace(
        thread_id=-1,
        vas=np.concatenate(vas_parts),
        writes=np.concatenate(writes_parts),
    )
