"""TF: a TensorFlow/ResNet-50-like training workload (Section 7).

Data-parallel training has a distinctive memory profile the paper relies
on to explain MIND's good scaling for TF:

- Each worker thread sweeps sequentially over large *private* buffers
  (input batch, activations, gradients) with very high locality, rewriting
  them every step.
- All workers read the *shared* model parameters each step, and each
  worker writes a small slice of them at the end of a step (the gradient
  application), so shared writes are comparatively rare -- the paper notes
  GC writes ~2.5x more shared data than TF.

The result: mostly-local traffic, occasional ``S -> M`` bursts on the
parameter region at step boundaries, and near-linear inter-blade scaling.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim.network import PAGE_SIZE
from .trace import RegionSpec, TraceWorkload


class TensorFlowLikeWorkload(TraceWorkload):
    """Data-parallel training: private sweeps + shared parameter traffic."""

    name = "TF"

    def __init__(
        self,
        num_threads: int,
        accesses_per_thread: int = 5_000,
        param_pages: int = 6_000,
        activation_pages_per_thread: int = 4_000,
        accesses_per_step: int = 500,
        param_reads_per_step: int = 60,
        param_writes_per_step: int = 8,
        seed: int = 1,
        burst: int = 24,
    ):
        super().__init__(num_threads, accesses_per_thread, seed, burst)
        self.param_pages = param_pages
        self.activation_pages_per_thread = activation_pages_per_thread
        self.accesses_per_step = accesses_per_step
        self.param_reads_per_step = param_reads_per_step
        self.param_writes_per_step = param_writes_per_step

    def region_specs(self) -> List[RegionSpec]:
        specs = [RegionSpec("params", self.param_pages * PAGE_SIZE)]
        specs.extend(
            RegionSpec(f"acts{t}", self.activation_pages_per_thread * PAGE_SIZE)
            for t in range(self.num_threads)
        )
        return specs

    def _generate(
        self, thread_id: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        regions: List[np.ndarray] = []
        pages: List[np.ndarray] = []
        writes: List[np.ndarray] = []
        produced = 0
        act_region = 1 + thread_id
        sweep_pos = 0
        while produced < self.num_touches:
            step = min(self.accesses_per_step, self.num_touches - produced)
            n_reads = min(self.param_reads_per_step, step)
            n_writes = min(self.param_writes_per_step, max(0, step - n_reads))
            n_act = step - n_reads - n_writes

            # Forward pass: read a window of shared parameters.
            p_read = rng.integers(0, self.param_pages, size=n_reads)
            regions.append(np.zeros(n_reads, dtype=np.int64))
            pages.append(p_read)
            writes.append(np.zeros(n_reads, dtype=bool))

            # Compute: sequential sweep over the private activation buffer
            # (read-modify-write, so faults arrive as writes).
            act_idx = (sweep_pos + np.arange(n_act)) % self.activation_pages_per_thread
            sweep_pos = (sweep_pos + n_act) % self.activation_pages_per_thread
            regions.append(np.full(n_act, act_region, dtype=np.int64))
            pages.append(act_idx)
            writes.append(np.ones(n_act, dtype=bool))

            # Gradient application: write a small slice of the parameters.
            # Each thread mostly updates its own striped slice, so the
            # shared-write set is narrow (the paper's low-contention case).
            slice_base = (thread_id * self.param_pages) // max(1, self.num_threads)
            p_write = slice_base + rng.integers(
                0, max(1, self.param_pages // max(1, self.num_threads)), size=n_writes
            )
            regions.append(np.zeros(n_writes, dtype=np.int64))
            pages.append(p_write % self.param_pages)
            writes.append(np.ones(n_writes, dtype=bool))

            produced += step
        return (
            np.concatenate(regions),
            np.concatenate(pages),
            np.concatenate(writes),
        )
