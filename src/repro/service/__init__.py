"""End-to-end multi-tenant serving on a MIND rack.

The robustness layer of the reproduction: an elastic KVS service with
open-loop tenants, admission control and load shedding, retry-storm
defense, a deterministic autoscaler, and chaos injection -- reported as
per-tenant availability/SLO curves.  See :mod:`repro.service.scenario`
for the scenario assembly and the design rationale.
"""

from .admission import (
    ADMIT,
    REJECT_DEGRADED,
    REJECT_PENDING,
    REJECT_QUEUE,
    ServiceAdmission,
)
from .autoscaler import Autoscaler, AutoscalerConfig
from .pool import Request, ServingPool
from .report import dump_service_json, render_service_report, service_result_to_json
from .retry import RetryPolicy
from .scenario import (
    CHAOS_MODES,
    ServiceConfig,
    ServiceResult,
    TenantSummary,
    config_from_params,
    rerun_without_defense,
    run_service,
    service_objectives,
)

__all__ = [
    "ADMIT",
    "CHAOS_MODES",
    "REJECT_DEGRADED",
    "REJECT_PENDING",
    "REJECT_QUEUE",
    "Autoscaler",
    "AutoscalerConfig",
    "Request",
    "RetryPolicy",
    "ServiceAdmission",
    "ServiceConfig",
    "ServiceResult",
    "ServingPool",
    "TenantSummary",
    "config_from_params",
    "dump_service_json",
    "render_service_report",
    "rerun_without_defense",
    "run_service",
    "service_objectives",
    "service_result_to_json",
]
