"""A deterministic queue-depth autoscaler for the serving pool.

Reactive and boring on purpose: every ``interval_us`` it samples the
pool's queue depth per (active + in-flight) slot, and after ``samples``
consecutive readings above/below the thresholds -- plus a cooldown -- it
adds or retires one slot.  Scale-up is *not* instantaneous: the new
serving thread takes ``slot_bringup_us`` to come up (thread placement on
a possibly-new blade, cache warm-up), modelling the window where demand
has already arrived but capacity hasn't.  Thread placement is a
control-plane metadata mutation, so a scale-up racing a switch fail-over
exercises the replicator catch-up path.

Everything is a pure function of simulated time and queue state -- no
randomness -- so scaling decisions are byte-identical across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Tuple


@dataclass
class AutoscalerConfig:
    min_slots: int = 1
    max_slots: int = 8
    interval_us: float = 500.0
    #: scale up when queue depth per slot stays above this...
    scale_up_depth: float = 3.0
    #: ...and down when it stays below this.
    scale_down_depth: float = 0.25
    #: consecutive over/under samples required before acting.
    samples: int = 2
    #: intervals to hold off after any scaling action.
    cooldown_intervals: int = 4
    #: thread placement + warm-up delay before a new slot serves.
    slot_bringup_us: float = 250.0

    def validate(self) -> "AutoscalerConfig":
        if not 1 <= self.min_slots <= self.max_slots:
            raise ValueError("need 1 <= min_slots <= max_slots")
        if self.scale_down_depth >= self.scale_up_depth:
            raise ValueError("scale_down_depth must be below scale_up_depth")
        if self.interval_us <= 0 or self.slot_bringup_us < 0:
            raise ValueError("intervals/bring-up must be positive")
        return self


@dataclass
class Autoscaler:
    """Drives :class:`~repro.service.pool.ServingPool` capacity online."""

    engine: Any
    pool: Any
    process: Any  # MindProcess -- spawn_thread() places new slots
    stats: Any
    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    timeline: Any = None

    def __post_init__(self):
        self.config.validate()
        #: (t_us, "up" | "down", blade_id | None) in decision order.
        self.events: List[Tuple[float, str, object]] = []
        self._over = 0
        self._under = 0
        self._cooldown = 0
        self._pending_adds = 0

    def run(self) -> Generator:
        """The perpetual control loop (start with ``engine.process``)."""
        cfg = self.config
        while True:
            yield cfg.interval_us
            if self._cooldown > 0:
                self._cooldown -= 1
                continue
            capacity = self.pool.active_slots + self._pending_adds
            depth = self.pool.queue_depth / max(1, capacity)
            if depth >= cfg.scale_up_depth:
                self._over += 1
                self._under = 0
            elif depth <= cfg.scale_down_depth:
                self._under += 1
                self._over = 0
            else:
                self._over = self._under = 0
            if self._over >= cfg.samples and capacity < cfg.max_slots:
                self._over = 0
                self._cooldown = cfg.cooldown_intervals
                self._pending_adds += 1
                self.engine.process(self._bring_up(), name="svc.scale_up")
            elif self._under >= cfg.samples and capacity > cfg.min_slots:
                self._under = 0
                self._cooldown = cfg.cooldown_intervals
                self._retire()

    def _bring_up(self) -> Generator:
        yield self.config.slot_bringup_us
        # Metadata mutation: may race an in-flight fail-over rebuild, in
        # which case the replicator's version bump forces a catch-up pass.
        thread = self.process.spawn_thread()
        self.pool.add_slot(thread)
        self._pending_adds -= 1
        t = self.engine.now
        self.events.append((t, "up", thread.blade_id))
        self.stats.incr("svc:scale_ups")
        if self.timeline is not None:
            self.timeline.mark(t, f"scale_up:blade{thread.blade_id}")

    def _retire(self) -> None:
        if not self.pool.retire_slot():
            return
        t = self.engine.now
        self.events.append((t, "down", None))
        self.stats.incr("svc:scale_downs")
        if self.timeline is not None:
            self.timeline.mark(t, "scale_down")
