"""Per-tenant admission control, load shedding, and retry-storm defense.

The serving pool has two finite resources a tenant can exhaust: its own
in-flight request budget (the per-tenant queue) and the switch's shared
pending-transaction table (the coherence directory's SRAM, Section 5.3).
:class:`ServiceAdmission` gates every request against both *before* it
touches the data plane, so overload turns into fast, cheap rejections at
the front door instead of timeouts deep in the coherence protocol.

Rejected clients retry with backoff -- which itself can snowball: a blip
(say, a switch fail-over) rejects a burst, the burst comes back as
retries, the retries saturate the queue, which rejects more...  The
storm detector watches the retry arrival rate over a sliding window and,
when it trips, *degrades gracefully*: the lowest-priority tenant (highest
tenant id) is shed outright -- its requests fail fast without retrying --
freeing capacity so the protected tenants drain.  Escalation sheds one
more tenant per window while the storm persists; recovery restores
everyone at once when retries subside.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

#: admission verdicts (also used as shed-reason labels in counters).
ADMIT = "admit"
REJECT_QUEUE = "queue_full"
REJECT_PENDING = "pending_saturated"
REJECT_DEGRADED = "degraded"


class ServiceAdmission:
    """Admission gate for a multi-tenant serving pool.

    Named to avoid confusion with ``repro.core.txn.AdmissionController``,
    which throttles *coherence transactions* inside the switch; this class
    throttles *client requests* in front of the service.

    Priorities are implicit in tenant ids: tenant 0 is the most important
    and tenant ``num_tenants - 1`` sheds first.
    """

    def __init__(
        self,
        num_tenants: int,
        tenant_queue_cap: int = 24,
        pending_load: Optional[Callable[[], float]] = None,
        pending_highwater: float = 0.85,
        storm_defense: bool = True,
        storm_window_us: float = 1_000.0,
        storm_enter_retries: int = 16,
        storm_exit_retries: int = 4,
    ):
        if num_tenants < 1:
            raise ValueError("need at least one tenant")
        if tenant_queue_cap < 1:
            raise ValueError("tenant_queue_cap must be >= 1")
        if not 0.0 < pending_highwater <= 1.0:
            raise ValueError("pending_highwater must be in (0, 1]")
        if storm_exit_retries >= storm_enter_retries:
            raise ValueError("storm exit threshold must be below enter threshold")
        self.num_tenants = num_tenants
        self.tenant_queue_cap = tenant_queue_cap
        self.pending_load = pending_load
        self.pending_highwater = pending_highwater
        self.storm_defense = storm_defense
        self.storm_window_us = storm_window_us
        self.storm_enter_retries = storm_enter_retries
        self.storm_exit_retries = storm_exit_retries

        self.in_flight = [0] * num_tenants
        #: tenants currently shed: ids >= num_tenants - shed_level.
        self.shed_level = 0
        #: completed ``(start_us, end_us)`` storm windows.
        self.storm_windows: List[Tuple[float, float]] = []
        self._storm_since: Optional[float] = None
        self._last_escalation_us = 0.0
        self._recent_retries: Deque[float] = deque()

    # -- the gate ----------------------------------------------------------

    def try_admit(self, now_us: float, tenant: int) -> str:
        """Decide one request's fate; returns a verdict constant.

        On :data:`ADMIT` the tenant's in-flight count is taken -- the
        caller must pair it with :meth:`note_done`.
        """
        self._update_storm(now_us)
        if self.is_shed(tenant):
            return REJECT_DEGRADED
        if self.in_flight[tenant] >= self.tenant_queue_cap:
            return REJECT_QUEUE
        if self.pending_load is not None:
            if self.pending_load() >= self.pending_highwater:
                return REJECT_PENDING
        self.in_flight[tenant] += 1
        return ADMIT

    def note_done(self, tenant: int) -> None:
        """Release the in-flight slot taken by a successful admit."""
        if self.in_flight[tenant] <= 0:
            raise RuntimeError(f"tenant {tenant} has no in-flight requests")
        self.in_flight[tenant] -= 1

    def note_retry(self, now_us: float) -> None:
        """Record a client scheduling a retry (feeds the storm detector)."""
        self._recent_retries.append(now_us)
        self._update_storm(now_us)

    def is_shed(self, tenant: int) -> bool:
        return tenant >= self.num_tenants - self.shed_level

    @property
    def in_storm(self) -> bool:
        return self._storm_since is not None

    @property
    def recent_retry_count(self) -> int:
        return len(self._recent_retries)

    def finalize(self, now_us: float) -> None:
        """Close out a storm still open when the run ends."""
        if self._storm_since is not None:
            self.storm_windows.append((self._storm_since, now_us))
            self._storm_since = None

    # -- storm detection ---------------------------------------------------

    def _update_storm(self, now_us: float) -> None:
        horizon = now_us - self.storm_window_us
        recent = self._recent_retries
        while recent and recent[0] < horizon:
            recent.popleft()
        if self._storm_since is None:
            if len(recent) >= self.storm_enter_retries:
                self._storm_since = now_us
                self._last_escalation_us = now_us
                if self.storm_defense and self.shed_level < self.num_tenants - 1:
                    self.shed_level += 1
        else:
            if len(recent) <= self.storm_exit_retries:
                self.storm_windows.append((self._storm_since, now_us))
                self._storm_since = None
                self.shed_level = 0
            elif (
                self.storm_defense
                and now_us - self._last_escalation_us >= self.storm_window_us
                and self.shed_level < self.num_tenants - 1
            ):
                # Still storming a full window after the last shed:
                # degrade one step further (never shed tenant 0).
                self.shed_level += 1
                self._last_escalation_us = now_us
