"""Rendering and serialization for service-scenario results."""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, List

from .scenario import ServiceResult


def render_service_report(sr: ServiceResult) -> List[str]:
    """Human-readable availability/SLO report, one string per line."""
    cfg = sr.config
    res = sr.result
    lines: List[str] = []
    lines.append(f"service {cfg.name}: {cfg.tenants} tenants x "
                 f"{cfg.clients_per_tenant} clients x "
                 f"{cfg.requests_per_client} requests  (seed {cfg.seed})")
    lines.append(
        f"  rack: {cfg.num_compute_blades} compute / "
        f"{cfg.num_memory_blades} memory blades; chaos={cfg.chaos}; "
        f"admission={'on' if cfg.admission else 'off'}; "
        f"storm_defense={'on' if cfg.storm_defense else 'off'}"
    )
    lines.append(
        f"  runtime {res.runtime_us / 1e3:.1f} ms simulated, "
        f"{sr.completed} requests completed, "
        f"final slots {int(res.stats.gauges.get('svc:slots_final', 0))}"
    )
    if sr.chaos_description:
        lines.append("chaos plan:")
        lines.extend(f"  {ln}" for ln in sr.chaos_description)
    if sr.outage_windows:
        spans = ", ".join(
            f"[{s / 1e3:.2f}, {e / 1e3:.2f}] ms" for s, e in sr.outage_windows
        )
        lines.append(f"switch outage windows: {spans}")
    if sr.scale_events:
        ups = sum(1 for _, kind, _ in sr.scale_events if kind == "up")
        downs = len(sr.scale_events) - ups
        lines.append(f"autoscaler: {ups} scale-up(s), {downs} scale-down(s)")
        for t, kind, blade in sr.scale_events:
            where = f" -> blade {blade}" if blade is not None else ""
            lines.append(f"  {t / 1e3:9.2f} ms  {kind}{where}")
    if sr.storm_windows:
        spans = ", ".join(
            f"[{s / 1e3:.2f}, {e / 1e3:.2f}] ms" for s, e in sr.storm_windows
        )
        lines.append(f"retry storms detected: {spans}")
    lines.append("per-tenant availability:")
    lines.append(
        "  tenant  arrivals  done  retries  shed  failed  avail    "
        "p999_us  slo_ok  unavail_ms"
    )
    for t in sr.tenants:
        lines.append(
            f"  t{t.tenant:<6d}{t.arrivals:9d}{t.completions:6d}"
            f"{t.retries:9d}{t.shed:6d}{t.failed:8d}"
            f"{t.availability:8.1%}{t.p999_us:10.1f}"
            f"{t.slo_compliance:8.1%}{t.unavailability_us / 1e3:11.2f}"
        )
    lines.append("slo report:")
    lines.extend(f"  {ln}" for ln in sr.slo.render())
    return lines


def service_result_to_json(sr: ServiceResult) -> Dict[str, Any]:
    """A byte-stable JSON document (sorted keys, no wall-clock data)."""
    doc: Dict[str, Any] = {
        "config": asdict(sr.config),
        "runtime_us": sr.result.runtime_us,
        "completed": sr.completed,
        "serving_start_us": sr.serving_start_us,
        "tenants": [asdict(t) for t in sr.tenants],
        "slo": sr.slo.to_json(),
        "scale_events": [
            {"t_us": t, "kind": kind, "blade": blade}
            for t, kind, blade in sr.scale_events
        ],
        "storm_windows": [list(w) for w in sr.storm_windows],
        "outage_windows": [list(w) for w in sr.outage_windows],
        "chaos": sr.chaos_description,
        "counters": {
            k: v for k, v in sorted(sr.result.stats.counters.items())
            if k.startswith("svc:") or k.startswith("failover")
        },
    }
    return doc


def dump_service_json(sr: ServiceResult) -> str:
    return json.dumps(service_result_to_json(sr), indent=2, sort_keys=True)
