"""An elastic pool of serving threads draining a shared request queue.

The pool is the service's data plane: admitted requests go into one FIFO
queue, and each *slot* (a simulated serving thread pinned to some compute
blade) loops popping a request, burning its CPU cost, then executing the
tenant's KVS operation through the MIND address space.  Capacity changes
online -- :meth:`ServingPool.add_slot` during scale-up (the new thread may
live on a freshly-placed blade), :meth:`ServingPool.retire_slot` during
scale-down -- without draining the queue or touching other slots, which is
exactly the elasticity the single-address-space design buys.

Idle slots park on a private event rather than poll, so an empty service
consumes no simulated time and the engine's determinism contract (FIFO
wakeups, no wall-clock) holds.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List


class Request:
    """One admitted client request moving through the pool."""

    __slots__ = (
        "tenant", "client", "index", "op",
        "arrival_us", "enqueued_us", "attempts", "queue_wait_us", "done",
    )

    def __init__(self, tenant: int, client: int, index: int, op):
        self.tenant = tenant
        self.client = client
        self.index = index
        self.op = op
        self.arrival_us = 0.0
        self.enqueued_us = 0.0
        self.attempts = 0
        self.queue_wait_us = 0.0
        self.done: Any = None  # Event, set by submit()


class _Slot:
    """Bookkeeping for one serving thread."""

    __slots__ = ("thread", "index", "retired", "parked")

    def __init__(self, thread, index: int):
        self.thread = thread
        self.index = index
        self.retired = False
        self.parked: Any = None  # Event while idle, else None


class ServingPool:
    """FIFO request queue plus an elastic set of serving slots.

    ``execute(thread, request)`` is the per-request generator (typically a
    tenant-dispatching closure over :class:`~repro.workloads.elastic_kvs.
    KvsTenant`); ``cpu_us`` is burned before it runs, modelling request
    parsing and protocol handling on the serving blade.
    """

    def __init__(self, engine, stats, cpu_us: float, execute: Callable):
        self.engine = engine
        self.stats = stats
        self.cpu_us = cpu_us
        self.execute = execute
        self.timeline: Any = None  # optional MetricsTimeline, set by the scenario
        self._queue: Deque[Request] = deque()
        self._slots: List[_Slot] = []
        self._idle: Deque[_Slot] = deque()
        self._next_index = 0

    # -- capacity ----------------------------------------------------------

    @property
    def active_slots(self) -> int:
        return sum(1 for s in self._slots if not s.retired)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def add_slot(self, thread) -> None:
        """Start a serving loop on ``thread`` (usable mid-run)."""
        slot = _Slot(thread, self._next_index)
        self._next_index += 1
        self._slots.append(slot)
        self.engine.process(self._worker(slot), name=f"svc.slot{slot.index}")

    def retire_slot(self) -> bool:
        """Retire the most recently added live slot (LIFO, like scale-up).

        The slot finishes its current request, then exits; a parked slot
        exits immediately.  Returns False when no slot is retirable.
        """
        for slot in reversed(self._slots):
            if not slot.retired:
                slot.retired = True
                if slot.parked is not None:
                    self._idle.remove(slot)
                    event, slot.parked = slot.parked, None
                    event.succeed()
                return True
        return False

    # -- request flow ------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Enqueue an admitted request and wake an idle slot if any."""
        request.enqueued_us = self.engine.now
        request.done = self.engine.event()
        self._queue.append(request)
        if self._idle:
            slot = self._idle.popleft()
            event, slot.parked = slot.parked, None
            event.succeed()

    def _worker(self, slot: _Slot) -> Generator:
        while not slot.retired:
            if not self._queue:
                slot.parked = self.engine.event()
                self._idle.append(slot)
                yield slot.parked
                continue
            req = self._queue.popleft()
            req.queue_wait_us = self.engine.now - req.enqueued_us
            self.stats.record_latency("svc:queue", req.queue_wait_us)
            if self.timeline is not None:
                self.timeline.record_latency(
                    self.engine.now, "svc:queue", req.queue_wait_us
                )
            yield self.cpu_us
            yield from self.execute(slot.thread, req)
            req.done.succeed()

    def drain_idle(self) -> None:
        """Wake every parked slot so retired ones can exit (run teardown)."""
        while self._idle:
            slot = self._idle.popleft()
            event, slot.parked = slot.parked, None
            event.succeed()
