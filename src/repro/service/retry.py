"""Client-side retries: capped exponential backoff with seeded jitter.

A rejected request (shed by admission control) retries after a backoff
that doubles per attempt up to a cap, scaled down by a jittered factor so
a burst of simultaneous rejections does not come back as a synchronized
wave -- the standard defense against self-inflicted retry storms.

Determinism: every attempt's jitter comes from its own
``stable_seed``-derived child stream, keyed by the request's identity
``(service, seed, tenant, client, index, attempt)``.  The draw is
independent of event interleaving, so runs are byte-identical across
reruns, processes, and ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import make_rng
from ..workloads.trace import stable_seed


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full-ish jitter."""

    #: retries allowed per request before it counts as failed.
    max_retries: int = 3
    #: first-retry backoff, in simulated us.
    base_us: float = 50.0
    #: backoff ceiling, in simulated us.
    cap_us: float = 1_600.0
    #: jitter fraction in [0, 1]: the backoff is scaled uniformly from
    #: ``[1 - jitter, 1] * base``; 0 disables jitter (lockstep retries).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_us <= 0 or self.cap_us < self.base_us:
            raise ValueError("need 0 < base_us <= cap_us")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_us(
        self, seed: int, tenant: int, client: int, index: int, attempt: int
    ) -> float:
        """The delay before retry ``attempt`` (1-based) of one request."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        backoff = min(self.cap_us, self.base_us * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0:
            return backoff
        rng = make_rng(
            stable_seed("svc.retry", seed, tenant, client, index, attempt)
        )
        return backoff * (1.0 - self.jitter * float(rng.random()))
