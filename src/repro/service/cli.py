"""``python -m repro serve``: run the serving scenario from the shell."""

from __future__ import annotations

import argparse

from .report import dump_service_json, render_service_report
from .scenario import CHAOS_MODES, ServiceConfig, run_service


def serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        name=args.name,
        seed=args.seed,
        num_compute_blades=args.blades,
        tenants=args.tenants,
        clients_per_tenant=args.clients,
        requests_per_client=args.requests,
        arrival_process=args.arrivals,
        arrival_rate_per_client=args.rate,
        chaos=args.chaos,
        admission=not args.no_admission,
        storm_defense=not args.no_storm_defense,
        max_retries=args.max_retries,
        tenant_queue_cap=args.queue_cap,
        slo_p999_us=args.slo_p999,
    )
    result = run_service(config)
    if args.json:
        print(dump_service_json(result))
    else:
        for line in render_service_report(result):
            print(line)
    return 0


def add_serve_parser(sub) -> None:
    serve_p = sub.add_parser(
        "serve",
        help="multi-tenant elastic KVS service under chaos, with SLO report",
        description=(
            "Run the end-to-end serving scenario: open-loop diurnal tenants "
            "on an elastic KVS, admission control with retry-storm defense, "
            "a queue-depth autoscaler, and optional chaos (switch crash, "
            "packet loss, blade outage).  Prints availability and SLO "
            "curves per tenant."
        ),
    )
    serve_p.add_argument("--name", default="kvs-service")
    serve_p.add_argument("--seed", type=int, default=1)
    serve_p.add_argument("--blades", type=int, default=4,
                         help="compute blades in the rack (default 4)")
    serve_p.add_argument("--tenants", type=int, default=3)
    serve_p.add_argument("--clients", type=int, default=3,
                         help="open-loop clients per tenant (default 3)")
    serve_p.add_argument("--requests", type=int, default=96,
                         help="requests per client (default 96)")
    serve_p.add_argument("--arrivals", choices=("poisson", "diurnal"),
                         default="diurnal")
    serve_p.add_argument("--rate", type=float, default=0.015,
                         help="mean arrivals per client per simulated us")
    serve_p.add_argument("--chaos", choices=CHAOS_MODES, default="none",
                         help="chaos phase injected while serving")
    serve_p.add_argument("--no-admission", action="store_true",
                         help="disable admission control entirely")
    serve_p.add_argument("--no-storm-defense", action="store_true",
                         help="keep admission but disable retry-storm shedding")
    serve_p.add_argument("--max-retries", type=int, default=3)
    serve_p.add_argument("--queue-cap", type=int, default=10,
                         help="per-tenant in-flight request budget")
    serve_p.add_argument("--slo-p999", type=float, default=1_100.0,
                         help="per-tenant p99.9 latency objective in us")
    serve_p.add_argument("--json", action="store_true",
                         help="emit the result as byte-stable JSON")
    serve_p.set_defaults(fn=serve)
