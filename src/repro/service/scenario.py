"""The end-to-end serving scenario: elastic multi-tenant KVS under chaos.

One :func:`run_service` call assembles the whole stack on a MIND rack:

- N tenants, each a :class:`~repro.workloads.elastic_kvs.KvsTenant` with a
  private table and protection domain in one serving process;
- open-loop clients with diurnal (or Poisson) arrivals per tenant,
  retrying rejections with capped exponential backoff;
- :class:`~repro.service.admission.ServiceAdmission` gating every request
  on per-tenant queue budgets and switch pending-table pressure, with
  retry-storm detection shedding the lowest-priority tenant first;
- a deterministic :class:`~repro.service.autoscaler.Autoscaler` adding
  and retiring serving threads from windowed queue depth;
- an optional :class:`~repro.faults.FaultPlan` chaos phase (switch crash
  mid-run, seeded packet loss, a memory-blade outage) injected while the
  service runs.

Results come back as availability/SLO curves through ``repro.telemetry``:
per-tenant p99.9, unavailability seconds, shed/retry counts, and
error-budget burn attributable to fault phase.  Every random stream is a
``stable_seed`` child keyed by identity, so a scenario -- including its
chaos -- is byte-identical across reruns and sweep ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Generator, List, Optional, Tuple

from ..api import MindSystem
from ..faults import FaultPlan
from ..sim.stats import RunResult
from ..telemetry import SloObjective, SloReport, evaluate_slos
from ..workloads.elastic_kvs import KvsOp, KvsTenant, make_ops
from ..workloads.openloop import ArrivalSpec, arrival_times
from ..workloads.trace import stable_seed
from .admission import ADMIT, REJECT_DEGRADED, ServiceAdmission
from .autoscaler import Autoscaler, AutoscalerConfig
from .pool import Request, ServingPool
from .retry import RetryPolicy

#: chaos presets selectable by name (CLI/sweep friendly).
CHAOS_MODES = ("none", "loss", "crash", "crash+loss", "full")


@dataclass
class ServiceConfig:
    """Everything about one serving run, flat so sweeps can grid it."""

    # -- rack -------------------------------------------------------------
    num_compute_blades: int = 4
    num_memory_blades: int = 2
    cache_capacity_pages: int = 2_048
    telemetry_window_us: float = 500.0

    # -- identity ---------------------------------------------------------
    name: str = "kvs-service"
    seed: int = 1

    # -- tenants & clients ------------------------------------------------
    tenants: int = 3
    clients_per_tenant: int = 3
    requests_per_client: int = 96
    keys_per_tenant: int = 64
    kvs_slots_per_tenant: int = 512
    value_bytes: int = 24
    read_fraction: float = 0.9
    zipf_theta: float = 0.9

    # -- arrivals ---------------------------------------------------------
    arrival_process: str = "diurnal"
    arrival_rate_per_client: float = 0.015  # requests per us
    diurnal_period_us: float = 20_000.0
    diurnal_amplitude: float = 0.6

    # -- serving ----------------------------------------------------------
    request_cpu_us: float = 8.0
    initial_slots: int = 2
    min_slots: int = 1
    max_slots: int = 8
    autoscale_interval_us: float = 500.0
    scale_up_depth: float = 2.0
    scale_down_depth: float = 0.25
    autoscale_samples: int = 2
    autoscale_cooldown: int = 2
    slot_bringup_us: float = 250.0

    # -- admission & retries ----------------------------------------------
    admission: bool = True
    tenant_queue_cap: int = 10
    pending_highwater: float = 0.85
    storm_defense: bool = True
    storm_window_us: float = 1_000.0
    storm_enter_retries: int = 16
    storm_exit_retries: int = 4
    max_retries: int = 3
    backoff_base_us: float = 50.0
    backoff_cap_us: float = 1_600.0
    backoff_jitter: float = 0.5

    # -- chaos (times relative to serving start; the default schedule
    # fits inside the ~6.4 ms arrival span of the default load) -----------
    chaos: Optional[str] = "none"  # None normalizes to "none" in validate()
    chaos_crash_at_us: float = 3_000.0
    chaos_loss_start_us: float = 1_500.0
    chaos_loss_end_us: float = 5_500.0
    chaos_loss_prob: float = 0.02
    chaos_outage_blade: int = 0
    chaos_outage_start_us: float = 4_500.0
    chaos_outage_end_us: float = 5_200.0

    # -- SLO --------------------------------------------------------------
    slo_p999_us: float = 1_100.0
    slo_target: float = 0.99

    def validate(self) -> "ServiceConfig":
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if self.clients_per_tenant < 1 or self.requests_per_client < 1:
            raise ValueError("need at least one client and one request")
        if self.chaos is None:
            # Grid strings parse a literal "none" to None; both mean off.
            self.chaos = "none"
        if self.chaos not in CHAOS_MODES:
            raise ValueError(
                f"unknown chaos mode {self.chaos!r}; pick from {CHAOS_MODES}"
            )
        if self.arrival_process not in ("poisson", "diurnal"):
            raise ValueError("arrival_process must be poisson or diurnal")
        if self.initial_slots < 1:
            raise ValueError("need at least one initial serving slot")
        return self

    def chaos_plan(self, start_us: float) -> Optional[FaultPlan]:
        """The chaos :class:`FaultPlan` for this run, or None.

        ``start_us`` anchors the plan's relative times to the moment
        serving begins (after preload), so the same config produces the
        same *relative* chaos no matter how long preload took.
        """
        if self.chaos == "none":
            return None
        plan = FaultPlan(seed=stable_seed(self.name, self.seed, "chaos"))
        if self.chaos in ("loss", "crash+loss", "full"):
            plan.packet_loss(
                start_us + self.chaos_loss_start_us,
                start_us + self.chaos_loss_end_us,
                prob=self.chaos_loss_prob,
            )
        if self.chaos in ("crash", "crash+loss", "full"):
            plan.switch_crash(at_us=start_us + self.chaos_crash_at_us)
        if self.chaos == "full":
            plan.blade_crash(
                self.chaos_outage_blade,
                start_us + self.chaos_outage_start_us,
                start_us + self.chaos_outage_end_us,
            )
        return plan.validate()


@dataclass
class TenantSummary:
    """Per-tenant availability outcome of one run."""

    tenant: int
    arrivals: int = 0
    completions: int = 0
    retries: int = 0
    shed: int = 0
    failed: int = 0
    p999_us: float = 0.0
    slo_compliance: float = 1.0
    slo_burn: float = 0.0
    unavailability_us: float = 0.0

    @property
    def availability(self) -> float:
        if self.arrivals == 0:
            return 1.0
        return self.completions / self.arrivals


@dataclass
class ServiceResult:
    """Everything :func:`run_service` learned, report-ready."""

    config: ServiceConfig
    result: RunResult
    tenants: List[TenantSummary]
    slo: SloReport
    scale_events: List[Tuple[float, str, object]]
    storm_windows: List[Tuple[float, float]]
    outage_windows: List[Tuple[float, float]]
    chaos_description: List[str] = field(default_factory=list)
    serving_start_us: float = 0.0

    @property
    def completed(self) -> int:
        return sum(t.completions for t in self.tenants)


def service_objectives(config: ServiceConfig) -> List[SloObjective]:
    """Per-tenant p99.9 objectives plus the aggregate, from the config."""
    objectives = [
        SloObjective(
            f"svc-t{i}-p999",
            f"svc:t{i}:latency",
            99.9,
            config.slo_p999_us,
            target=config.slo_target,
        )
        for i in range(config.tenants)
    ]
    objectives.append(
        SloObjective(
            "svc-p999", "svc:latency", 99.9, config.slo_p999_us,
            target=config.slo_target,
        )
    )
    return objectives


def run_service(config: ServiceConfig) -> ServiceResult:
    """Run the serving scenario to completion; returns its result."""
    cfg = config.validate()
    system = MindSystem(
        num_compute_blades=cfg.num_compute_blades,
        num_memory_blades=cfg.num_memory_blades,
        cache_capacity_pages=cfg.cache_capacity_pages,
        store_data=True,
        telemetry=True,
        telemetry_window_us=cfg.telemetry_window_us,
    )
    engine = system.cluster.engine
    stats = system.stats
    timeline = stats.timeline

    process = system.spawn_process(cfg.name)
    tenants = [
        KvsTenant(
            process,
            i,
            num_keys=cfg.keys_per_tenant,
            num_slots=cfg.kvs_slots_per_tenant,
            value_bytes=cfg.value_bytes,
        )
        for i in range(cfg.tenants)
    ]

    # Preload every tenant's keys before serving or chaos begins.
    loader = process.spawn_thread()
    system.run_concurrently([t.preload_gen(loader) for t in tenants])
    t0 = system.now_us
    timeline.set_phase(t0, "serve")
    timeline.mark(t0, "serving_start")

    plan = cfg.chaos_plan(t0)
    chaos_description: List[str] = []
    if plan is not None:
        chaos_description = plan.describe()
        system.inject_faults(plan)

    # -- data plane: pool + admission + autoscaler ------------------------
    def execute(thread, req: Request) -> Generator:
        yield from tenants[req.tenant].serve_gen(thread, req.op)

    pool = ServingPool(engine, stats, cfg.request_cpu_us, execute)
    pool.timeline = timeline
    for _ in range(cfg.initial_slots):
        pool.add_slot(process.spawn_thread())

    pending = system.cluster.mmu.coherence.pending
    admission = ServiceAdmission(
        num_tenants=cfg.tenants,
        tenant_queue_cap=cfg.tenant_queue_cap,
        pending_load=lambda: pending.occupancy / pending.capacity,
        pending_highwater=cfg.pending_highwater,
        storm_defense=cfg.storm_defense,
        storm_window_us=cfg.storm_window_us,
        storm_enter_retries=cfg.storm_enter_retries,
        storm_exit_retries=cfg.storm_exit_retries,
    )
    retry = RetryPolicy(
        max_retries=cfg.max_retries,
        base_us=cfg.backoff_base_us,
        cap_us=cfg.backoff_cap_us,
        jitter=cfg.backoff_jitter,
    )
    autoscaler = Autoscaler(
        engine,
        pool,
        process,
        stats,
        AutoscalerConfig(
            min_slots=cfg.min_slots,
            max_slots=cfg.max_slots,
            interval_us=cfg.autoscale_interval_us,
            scale_up_depth=cfg.scale_up_depth,
            scale_down_depth=cfg.scale_down_depth,
            samples=cfg.autoscale_samples,
            cooldown_intervals=cfg.autoscale_cooldown,
            slot_bringup_us=cfg.slot_bringup_us,
        ),
        timeline=timeline,
    )
    engine.process(autoscaler.run(), name="svc.autoscaler")

    # -- clients ----------------------------------------------------------
    summaries = [TenantSummary(tenant=i) for i in range(cfg.tenants)]

    def request_lifecycle(req: Request) -> Generator:
        """Admission -> serve -> complete, retrying rejections."""
        i = req.tenant
        while True:
            verdict = admission.try_admit(engine.now, i) if cfg.admission else ADMIT
            if verdict == ADMIT:
                if cfg.admission:
                    pass  # in-flight slot taken inside try_admit
                else:
                    admission.in_flight[i] += 1
                pool.submit(req)
                yield req.done
                admission.note_done(i)
                latency = engine.now - req.arrival_us
                summaries[i].completions += 1
                stats.incr(f"svc:t{i}:completions")
                stats.record_latency(f"svc:t{i}:latency", latency)
                stats.record_latency("svc:latency", latency)
                timeline.record_latency(engine.now, f"svc:t{i}:latency", latency)
                timeline.record_latency(engine.now, "svc:latency", latency)
                timeline.incr(engine.now, f"svc:t{i}:completions")
                return
            # Rejected: shed outright (degraded / out of retries) or back off.
            summaries[i].shed += 1
            stats.incr(f"svc:t{i}:shed")
            stats.incr(f"svc:shed:{verdict}")
            timeline.incr(engine.now, f"svc:t{i}:shed")
            if verdict == REJECT_DEGRADED or req.attempts >= retry.max_retries:
                summaries[i].failed += 1
                stats.incr(f"svc:t{i}:failed")
                timeline.incr(engine.now, f"svc:t{i}:failed")
                return
            req.attempts += 1
            admission.note_retry(engine.now)
            summaries[i].retries += 1
            stats.incr(f"svc:t{i}:retries")
            timeline.incr(engine.now, f"svc:t{i}:retries")
            yield retry.backoff_us(
                cfg.seed, req.tenant, req.client, req.index, req.attempts
            )

    def client(tenant: int, client_id: int) -> Generator:
        """Open-loop dispatcher: one tenant client's arrival schedule."""
        ops = make_ops(
            cfg.name,
            cfg.seed,
            tenant,
            client_id,
            cfg.requests_per_client,
            cfg.keys_per_tenant,
            read_fraction=cfg.read_fraction,
            zipf_theta=cfg.zipf_theta,
            value_bytes=cfg.value_bytes,
        )
        spec = ArrivalSpec(
            process=cfg.arrival_process,
            rate_per_us=cfg.arrival_rate_per_client,
            period_us=cfg.diurnal_period_us,
            amplitude=cfg.diurnal_amplitude,
        )
        arrivals = arrival_times(
            spec,
            cfg.requests_per_client,
            stable_seed(cfg.name, cfg.seed, tenant, client_id, "arrivals"),
        )
        t_start = engine.now
        lifecycles = []
        for r, op in enumerate(ops):
            at = t_start + arrivals[r]
            if at > engine.now:
                yield at - engine.now
            req = Request(tenant, client_id, r, op)
            req.arrival_us = engine.now
            summaries[tenant].arrivals += 1
            stats.incr(f"svc:t{tenant}:arrivals")
            timeline.incr(engine.now, f"svc:t{tenant}:arrivals")
            lifecycles.append(
                engine.process(
                    request_lifecycle(req), name=f"svc.req.t{tenant}c{client_id}r{r}"
                )
            )
        if lifecycles:
            yield engine.all_of(lifecycles)

    system.run_concurrently(
        [
            client(i, c)
            for i in range(cfg.tenants)
            for c in range(cfg.clients_per_tenant)
        ]
    )

    # -- wrap-up ----------------------------------------------------------
    end = system.now_us
    admission.finalize(end)
    pool.drain_idle()
    system.capture_telemetry()

    objectives = service_objectives(cfg)
    slo = evaluate_slos(timeline, objectives)
    by_name = {r.objective.name: r for r in slo.results}
    for i, summary in enumerate(summaries):
        cat = f"svc:t{i}:latency"
        if cat in stats.latencies and stats.latencies[cat]:
            summary.p999_us = stats.latency_summary(cat).p999
        slo_result = by_name.get(f"svc-t{i}-p999")
        if slo_result is not None:
            summary.slo_compliance = slo_result.compliance
            # Burn can be infinite (exhausted budget); clamp for JSON.
            summary.slo_burn = min(slo_result.burn_rate, 1e6)
        summary.unavailability_us = _unavailability_us(timeline, i)
        stats.set_gauge(f"svc:t{i}:availability", summary.availability)
        stats.set_gauge(f"svc:t{i}:slo_compliance", summary.slo_compliance)
        stats.set_gauge(f"svc:t{i}:slo_burn", summary.slo_burn)
        stats.set_gauge(f"svc:t{i}:unavailability_us", summary.unavailability_us)
    stats.set_gauge("svc:slots_final", float(pool.active_slots))
    stats.set_gauge("svc:storm_windows", float(len(admission.storm_windows)))

    failover = system.cluster.failover
    outage_windows = list(failover.outage_windows) if failover is not None else []

    result = RunResult(
        system="mind",
        workload=cfg.name,
        num_blades=cfg.num_compute_blades,
        num_threads=pool.active_slots,
        runtime_us=end,
        total_accesses=sum(s.completions for s in summaries),
        stats=stats,
        kernel_stats=engine.kernel_stats(),
    )
    return ServiceResult(
        config=cfg,
        result=result,
        tenants=summaries,
        slo=slo,
        scale_events=list(autoscaler.events),
        storm_windows=list(admission.storm_windows),
        outage_windows=outage_windows,
        chaos_description=chaos_description,
        serving_start_us=t0,
    )


def _unavailability_us(timeline, tenant: int) -> float:
    """Seconds-of-unavailability proxy: windows where the tenant shed or
    failed requests and completed none."""
    total = 0.0
    for snap in timeline.snapshots():
        counters = snap.counters
        bad = counters.get(f"svc:t{tenant}:shed", 0.0) + counters.get(
            f"svc:t{tenant}:failed", 0.0
        )
        if bad > 0 and counters.get(f"svc:t{tenant}:completions", 0.0) == 0:
            total += timeline.window_us
    return total


def config_from_params(params: Dict[str, object], **overrides) -> ServiceConfig:
    """Build a :class:`ServiceConfig` from loose sweep/CLI parameters.

    Unknown keys raise (typo protection in sweep grids); ``overrides``
    win over ``params``.
    """
    known = {f.name for f in fields(ServiceConfig)}
    merged: Dict[str, object] = dict(params)
    merged.update(overrides)
    unknown = sorted(set(merged) - known)
    if unknown:
        raise ValueError(
            f"unknown service parameter(s): {', '.join(unknown)}; "
            f"valid keys are ServiceConfig fields"
        )
    return ServiceConfig(**merged)  # type: ignore[arg-type]


def rerun_without_defense(config: ServiceConfig) -> ServiceResult:
    """Convenience for A/B reports: same scenario, storm defense off."""
    return run_service(replace(config, storm_defense=False))
