"""Sharing-aware thread placement (Section 8, "Thread management").

The paper notes that an orthogonal way to cut coherence traffic is to
*co-locate threads that share memory*: accesses between threads on the
same compute blade hit the shared local cache and never cross the network.
This module implements that future-work idea:

1. :func:`sharing_affinity` profiles the workload's deterministic traces
   and scores every thread pair by how much write-shared traffic they
   exchange (reads against another thread's writes are what turn into
   invalidations and re-fetches).
2. :func:`affinity_placement` greedily packs threads onto blades to
   maximize intra-blade affinity -- a classic graph-partitioning heuristic
   that is cheap enough for a control plane to run at placement time.
3. :func:`run_with_placement` replays the workload under an explicit
   placement so round-robin and affinity placement can be compared
   (``benchmarks/test_ablation_thread_placement.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cluster import ClusterConfig, MindCluster
from .runner import RunnerConfig, _base_mind, _cache_pages
from .sim.network import PAGE_SIZE, NetworkConfig
from .sim.stats import RunResult
from .workloads.trace import ThreadTrace, TraceWorkload


def _page_profiles(
    traces: Sequence[ThreadTrace],
) -> Tuple[List[Dict[int, int]], List[Dict[int, int]]]:
    """Per-thread page histograms, split into reads and writes."""
    reads: List[Dict[int, int]] = []
    writes: List[Dict[int, int]] = []
    for trace in traces:
        pages = (trace.vas // PAGE_SIZE).astype(np.int64)
        w = trace.writes
        r_pages, r_counts = np.unique(pages[~w], return_counts=True)
        w_pages, w_counts = np.unique(pages[w], return_counts=True)
        reads.append(dict(zip(r_pages.tolist(), r_counts.tolist())))
        writes.append(dict(zip(w_pages.tolist(), w_counts.tolist())))
    return reads, writes


def sharing_affinity(traces: Sequence[ThreadTrace]) -> np.ndarray:
    """Pairwise affinity: traffic that becomes coherence messages when the
    two threads sit on different blades.

    For threads *i, j* and page *p*, separating them costs when one writes
    what the other touches: we score ``min(w_i, r_j + w_j) + min(w_j,
    r_i + w_i)`` summed over shared pages -- read-read sharing is free
    under MSI and contributes nothing.
    """
    n = len(traces)
    reads, writes = _page_profiles(traces)
    affinity = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            score = 0
            for page, wi in writes[i].items():
                other = reads[j].get(page, 0) + writes[j].get(page, 0)
                if other:
                    score += min(wi, other)
            for page, wj in writes[j].items():
                other = reads[i].get(page, 0) + writes[i].get(page, 0)
                if other:
                    score += min(wj, other)
            affinity[i, j] = affinity[j, i] = score
    return affinity


def affinity_placement(
    traces: Sequence[ThreadTrace], num_blades: int, threads_per_blade: int
) -> List[int]:
    """Greedy affinity packing: each blade is seeded with the heaviest
    unplaced thread, then filled with its best-affinity companions.

    Returns ``placement[i] = blade`` for every thread.
    """
    n = len(traces)
    if n > num_blades * threads_per_blade:
        raise ValueError("more threads than placement slots")
    affinity = sharing_affinity(traces)
    placement = [-1] * n
    unplaced = set(range(n))
    for blade in range(num_blades):
        if not unplaced:
            break
        # Seed: the unplaced thread with the most total sharing left.
        seed = max(unplaced, key=lambda t: affinity[t, list(unplaced)].sum())
        group = [seed]
        unplaced.discard(seed)
        while len(group) < threads_per_blade and unplaced:
            best = max(
                unplaced, key=lambda t: sum(affinity[t, g] for g in group)
            )
            group.append(best)
            unplaced.discard(best)
        for t in group:
            placement[t] = blade
    return placement


def round_robin_placement(num_threads: int, num_blades: int) -> List[int]:
    """The paper's default policy (Section 6.1)."""
    return [t % num_blades for t in range(num_threads)]


def cross_blade_share_fraction(
    traces: Sequence[ThreadTrace], placement: Sequence[int]
) -> float:
    """Fraction of pairwise affinity that crosses blades under a placement
    (the quantity affinity placement minimizes)."""
    affinity = sharing_affinity(traces)
    total = affinity.sum()
    if total == 0:
        return 0.0
    cross = sum(
        affinity[i, j]
        for i in range(len(traces))
        for j in range(i + 1, len(traces))
        if placement[i] != placement[j]
    ) * 2
    return cross / total


def run_with_placement(
    workload: TraceWorkload,
    num_blades: int,
    placement: Sequence[int],
    config: Optional[RunnerConfig] = None,
    system_name: str = "MIND",
) -> RunResult:
    """Replay ``workload`` with thread *i* pinned to ``placement[i]``."""
    cfg = config or RunnerConfig()
    cluster = MindCluster(
        ClusterConfig(
            num_compute_blades=num_blades,
            num_memory_blades=cfg.num_memory_blades,
            cache_capacity_pages=_cache_pages(workload, cfg),
            store_data=cfg.store_data,
            mind=cfg.mind or _base_mind(cfg),
            network=cfg.network or NetworkConfig(),
        )
    )
    controller = cluster.controller
    task = controller.sys_exec(workload.name)
    bases = [
        controller.sys_mmap(task.pid, spec.size_bytes)
        for spec in workload.region_specs()
    ]
    traces = workload.all_traces(bases)
    gens = []
    for trace in traces:
        blade = cluster.compute_blade(placement[trace.thread_id])
        gens.append(blade.run_thread(task.pid, trace.stream()))
    cluster.run_all(gens)
    total = sum(len(t) for t in traces)
    return RunResult(
        system=system_name,
        workload=workload.name,
        num_blades=num_blades,
        num_threads=workload.num_threads,
        runtime_us=cluster.engine.now,
        total_accesses=total,
        stats=cluster.stats,
        kernel_stats=cluster.engine.kernel_stats(),
    )
